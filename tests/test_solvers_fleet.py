"""Tests for repro.solvers.fleet — shape cache, DP batcher, solve_fleet."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.core.cubis import solve_cubis
from repro.experiments.quality import default_uncertainty
from repro.game.generator import random_interval_game
from repro.solvers.fleet import (
    DpBatcher,
    SkeletonShapeCache,
    active_shape_cache,
    process_shape_cache,
    solve_fleet,
    use_shape_cache,
)
from tests.test_core_milp import assert_models_identical, small_data


def make_fleet(num_games=4, num_targets=5, seed=2016):
    games = [
        random_interval_game(num_targets, seed=seed + i)
        for i in range(num_games)
    ]
    models = [default_uncertainty(g.payoffs) for g in games]
    return games, models


SOLVE = {"num_segments": 5, "epsilon": 0.05}


def assert_results_identical(a, b):
    """Bit-identical comparison of two CubisResults."""
    np.testing.assert_array_equal(a.strategy, b.strategy)
    assert a.worst_case_value == b.worst_case_value
    assert a.lower_bound == b.lower_bound
    assert a.upper_bound == b.upper_bound
    assert a.iterations == b.iterations
    assert a.oracle_calls == b.oracle_calls
    assert a.converged == b.converged


class TestSkeletonShapeCache:
    def test_miss_then_hit(self):
        ud, lo, hi, grid, *_ = small_data()
        cache = SkeletonShapeCache()
        proto = cache.lease(ud, lo, hi, 1.0, grid)
        view = cache.lease(ud * 2, lo, hi, 1.0, grid)
        assert cache.stats() == {
            "shapes": 1, "capacity": 8, "hits": 1, "misses": 1, "evictions": 0,
        }
        assert view.shares_structure(proto)

    def test_leased_view_tabulates_like_fresh_build(self):
        ud, lo, hi, grid, *_ = small_data()
        cache = SkeletonShapeCache()
        cache.lease(ud, lo, hi, 1.0, grid)
        view = cache.lease(ud * 1.5, lo * 1.1, hi * 1.2, 1.0, grid)
        from repro.core.milp import build_cubis_milp

        assert_models_identical(
            view.patch(0.5),
            build_cubis_milp(ud * 1.5, lo * 1.1, hi * 1.2, 1.0, 0.5, grid),
        )

    def test_distinct_shapes_get_distinct_prototypes(self):
        ud, lo, hi, grid, *_ = small_data(k=5)
        ud7, lo7, hi7, grid7, *_ = small_data(k=7)
        cache = SkeletonShapeCache()
        a = cache.lease(ud, lo, hi, 1.0, grid)
        b = cache.lease(ud7, lo7, hi7, 1.0, grid7)
        assert not b.shares_structure(a)
        assert cache.stats()["misses"] == 2
        assert len(cache) == 2

    def test_resources_and_equality_key_the_shape(self):
        ud, lo, hi, grid, *_ = small_data()
        cache = SkeletonShapeCache()
        cache.lease(ud, lo, hi, 1.0, grid)
        cache.lease(ud, lo, hi, 2.0, grid)
        cache.lease(ud, lo, hi, 1.0, grid, equality_resources=True)
        assert cache.stats()["misses"] == 3

    def test_lru_eviction(self):
        ud, lo, hi, grid, *_ = small_data()
        cache = SkeletonShapeCache(capacity=2)
        cache.lease(ud, lo, hi, 1.0, grid)
        cache.lease(ud, lo, hi, 2.0, grid)
        cache.lease(ud, lo, hi, 3.0, grid)  # evicts R=1.0
        assert cache.stats()["evictions"] == 1
        cache.lease(ud, lo, hi, 1.0, grid)  # miss again
        assert cache.stats()["misses"] == 4
        assert cache.stats()["hits"] == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            SkeletonShapeCache(capacity=0)

    def test_telemetry_counters_ticked(self):
        ud, lo, hi, grid, *_ = small_data()
        tele = telemetry.Telemetry()
        cache = SkeletonShapeCache()
        with telemetry.use(tele):
            cache.lease(ud, lo, hi, 1.0, grid)
            cache.lease(ud * 2, lo, hi, 1.0, grid)
            cache.lease(ud * 3, lo, hi, 1.0, grid)
        hits = tele.metrics.counter("repro_skeleton_shape_hits_total")
        misses = tele.metrics.counter("repro_skeleton_shape_misses_total")
        assert hits.value == 2
        assert misses.value == 1


class TestUseShapeCache:
    def test_context_activation_and_reset(self):
        assert active_shape_cache() is None
        with use_shape_cache() as cache:
            assert active_shape_cache() is cache
            inner = SkeletonShapeCache(capacity=2)
            with use_shape_cache(inner):
                assert active_shape_cache() is inner
            assert active_shape_cache() is cache
        assert active_shape_cache() is None

    def test_threads_do_not_inherit_the_cache(self):
        seen = []
        with use_shape_cache():
            thread = threading.Thread(
                target=lambda: seen.append(active_shape_cache())
            )
            thread.start()
            thread.join()
        assert seen == [None]

    def test_process_cache_is_a_singleton(self):
        assert process_shape_cache() is process_shape_cache()

    def test_solve_cubis_leases_from_active_cache(self):
        games, models = make_fleet(3)
        cache = SkeletonShapeCache()
        with use_shape_cache(cache):
            results = [
                solve_cubis(g, m, **SOLVE) for g, m in zip(games, models)
            ]
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        # Cached-structure solves equal fresh-structure solves bit for bit.
        for game, model, shared in zip(games, models, results):
            assert_results_identical(
                shared, solve_cubis(game, model, **SOLVE)
            )


class TestDpBatcher:
    def test_single_participant_passthrough(self):
        from repro.core.dp import maximize_separable_on_grid

        batcher = DpBatcher(1)
        phi = np.array([[0.0, 1.0, 3.0]])
        alloc = batcher.participant(0)(phi, 2)
        ref = maximize_separable_on_grid(phi, 2)
        assert alloc.value == ref.value
        np.testing.assert_array_equal(alloc.units, ref.units)
        assert batcher.rounds == 1

    def test_round_fires_only_when_quorum_is_full(self):
        batcher = DpBatcher(2)
        phi = np.array([[0.0, 2.0]])
        out = {}

        def submit(pid):
            out[pid] = batcher.participant(pid)(phi * (pid + 1), 1)

        t0 = threading.Thread(target=submit, args=(0,), daemon=True)
        t0.start()
        t0.join(timeout=0.2)
        assert t0.is_alive()  # waiting for participant 1
        submit(1)
        t0.join(timeout=5)
        assert not t0.is_alive()
        assert batcher.rounds == 1
        assert out[0].value == 2.0 and out[1].value == 4.0

    def test_retire_shrinks_the_quorum(self):
        batcher = DpBatcher(2)
        batcher.retire(1)
        alloc = batcher.participant(0)(np.array([[0.0, 5.0]]), 1)
        assert alloc.value == 5.0

    def test_mixed_shapes_batch_in_one_round(self):
        batcher = DpBatcher(2)
        out = {}

        def submit(pid, phi):
            out[pid] = batcher.participant(pid)(phi, 1)

        threads = [
            threading.Thread(
                target=submit, args=(0, np.array([[0.0, 1.0]])), daemon=True
            ),
            threading.Thread(
                target=submit, args=(1, np.array([[0.0, 2.0], [0.0, 3.0]])),
                daemon=True,
            ),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert batcher.rounds == 1
        assert batcher.batched_calls == 2  # one per shape group
        assert out[0].value == 1.0 and out[1].value == 3.0

    def test_failure_propagates_to_waiters(self):
        batcher = DpBatcher(2)
        errors = {}

        def submit(pid, budget):
            try:
                batcher.participant(pid)(np.array([[0.0, 1.0]]), budget)
            except Exception as exc:
                errors[pid] = exc

        # Participant 1 waits with a valid submission; participant 0's
        # poisoned budget completes the round and its group (sorted
        # first) raises before participant 1's group runs — so 1 must
        # be woken and told, not left waiting forever.
        t1 = threading.Thread(target=submit, args=(1, 1), daemon=True)
        t1.start()
        while True:  # wait until participant 1 is parked in the round
            with batcher._cond:
                if 1 in batcher._pending:
                    break
        submit(0, -1)
        t1.join(timeout=5)
        assert not t1.is_alive()
        assert isinstance(errors[0], ValueError)
        assert isinstance(errors[1], RuntimeError)

    def test_retired_participant_rejected(self):
        batcher = DpBatcher(1)
        batcher.retire(0)
        with pytest.raises(RuntimeError, match="retired"):
            batcher.participant(0)(np.array([[0.0, 1.0]]), 1)

    def test_participant_count_validation(self):
        with pytest.raises(ValueError, match="num_participants"):
            DpBatcher(0)


class TestSolveFleetMilp:
    def test_without_continuation_matches_independent_solves(self):
        games, models = make_fleet(4)
        fleet = solve_fleet(games, models, continuation=False, **SOLVE)
        for game, model, got in zip(games, models, fleet):
            want = solve_cubis(game, model, session="incremental", **SOLVE)
            assert_results_identical(got, want)

    def test_share_axis_is_bit_identical(self):
        games, models = make_fleet(4)
        shared = solve_fleet(games, models, share=True, **SOLVE)
        unshared = solve_fleet(games, models, share=False, **SOLVE)
        for a, b in zip(shared, unshared):
            assert_results_identical(a, b)
        assert shared.shape_stats["hits"] == 3
        assert unshared.shape_stats["hits"] == 0

    def test_structure_is_assembled_once_per_shape(self):
        games, models = make_fleet(5)
        fleet = solve_fleet(games, models, **SOLVE)
        assert fleet.shape_stats["misses"] == 1
        assert fleet.shape_stats["hits"] == 4
        # One live model carried across all five games: a single fresh
        # build, every game (including the first, which retargets the
        # empty leased session) entered through retargets.
        assert fleet.session_stats["fresh_builds"] == 1
        assert fleet.session_stats["retargets"] == 5

    def test_mixed_shapes_in_one_fleet(self):
        games4, models4 = make_fleet(2, num_targets=4)
        games6, models6 = make_fleet(2, num_targets=6, seed=77)
        fleet = solve_fleet(
            games4 + games6, models4 + models6, **SOLVE
        )
        assert fleet.shape_stats["misses"] == 2
        assert fleet.shape_stats["hits"] == 2
        assert len(fleet) == 4

    def test_length_mismatch_rejected(self):
        games, models = make_fleet(2)
        with pytest.raises(ValueError, match="uncertainty models"):
            solve_fleet(games, models[:1], **SOLVE)

    def test_unknown_oracle_rejected(self):
        games, models = make_fleet(1)
        with pytest.raises(ValueError, match="oracle"):
            solve_fleet(games, models, oracle="cplex", **SOLVE)

    @pytest.mark.parametrize(
        "owned", ["session", "warm_start", "dp_kernel"]
    )
    def test_owned_kwargs_rejected(self, owned):
        games, models = make_fleet(1)
        with pytest.raises(TypeError, match=owned):
            solve_fleet(games, models, **{owned: None}, **SOLVE)

    def test_fleet_span_and_counters(self):
        games, models = make_fleet(3)
        tele = telemetry.Telemetry()
        with telemetry.use(tele):
            solve_fleet(games, models, **SOLVE)
        span = next(s for s in tele.spans if s.name == "fleet.solve")
        assert span.attributes["games"] == 3
        assert span.attributes["oracle"] == "milp"
        assert span.attributes["share"] is True
        assert span.attributes["shape_hits"] == 2
        assert span.attributes["shape_misses"] == 1
        assert tele.metrics.counter(
            "repro_skeleton_shape_hits_total"
        ).value == 2

    def test_totals_sums_per_game_counters(self):
        games, models = make_fleet(2)
        fleet = solve_fleet(games, models, **SOLVE)
        totals = fleet.totals()
        assert totals["oracle_calls"] == sum(
            r.oracle_calls for r in fleet.results
        )
        assert totals["milp_solves"] == sum(
            r.milp_solves for r in fleet.results
        )
        assert totals["oracle_calls"] >= 1

    def test_continuation_converges_to_theorem_bound(self):
        # Continuation changes the probe schedule, not the guarantee:
        # every game's robust value still lands within Theorem 1 slack
        # of its independent solve.
        games, models = make_fleet(4)
        fleet = solve_fleet(games, models, continuation=True, **SOLVE)
        for game, model, got in zip(games, models, fleet):
            want = solve_cubis(game, model, **SOLVE)
            assert got.converged
            assert got.worst_case_value == pytest.approx(
                want.worst_case_value, abs=2 * SOLVE["epsilon"] + 1.0
            )


class TestSolveFleetDp:
    def test_matches_independent_dp_solves(self):
        games, models = make_fleet(3)
        fleet = solve_fleet(games, models, oracle="dp", **SOLVE)
        assert fleet.dp_rounds > 0
        assert fleet.session_stats is None
        for game, model, got in zip(games, models, fleet):
            want = solve_cubis(game, model, oracle="dp", **SOLVE)
            assert_results_identical(got, want)

    def test_dp_metrics_absorbed_in_game_order(self):
        games, models = make_fleet(2)
        tele = telemetry.Telemetry()
        with telemetry.use(tele):
            fleet = solve_fleet(games, models, oracle="dp", **SOLVE)
        hist = tele.metrics.histogram("repro_oracle_seconds", kind="dp")
        assert hist.count == sum(r.oracle_calls for r in fleet.results)

    def test_dp_failure_propagates(self):
        games, models = make_fleet(2)
        with pytest.raises(ValueError):
            solve_fleet(
                games, models, oracle="dp", num_segments=5, epsilon=-1.0
            )


class TestFleetPropertyBitIdentity:
    @given(st.integers(0, 10**6))
    @settings(max_examples=5, deadline=None)
    def test_share_and_session_lease_never_change_answers(self, seed):
        game = random_interval_game(4, seed=seed)
        model = default_uncertainty(game.payoffs)
        fleet = solve_fleet(
            [game, game], [model, model], continuation=False, **SOLVE
        )
        want = solve_cubis(game, model, session="incremental", **SOLVE)
        for got in fleet:
            assert_results_identical(got, want)
