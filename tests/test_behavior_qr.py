"""Unit tests for repro.behavior.qr (and the DiscreteChoiceModel base)."""

import numpy as np
import pytest

from repro.behavior.qr import QuantalResponse


class TestQuantalResponse:
    def test_zero_lambda_is_uniform(self, simple_payoffs):
        model = QuantalResponse(simple_payoffs, rationality=0.0)
        q = model.choice_probabilities(np.array([0.2, 0.5, 0.3]))
        np.testing.assert_allclose(q, np.full(3, 1 / 3))

    def test_high_lambda_concentrates_on_best_target(self, simple_payoffs):
        model = QuantalResponse(simple_payoffs, rationality=25.0)
        x = np.zeros(3)
        ua = simple_payoffs.attacker_utilities(x)
        q = model.choice_probabilities(x)
        assert np.argmax(q) == np.argmax(ua)
        assert q.max() > 0.99

    def test_negative_lambda_rejected(self, simple_payoffs):
        with pytest.raises(ValueError, match="rationality"):
            QuantalResponse(simple_payoffs, rationality=-1.0)

    def test_weights_positive(self, simple_payoffs):
        model = QuantalResponse(simple_payoffs, rationality=0.7)
        w = model.attack_weights(np.array([0.1, 0.9, 0.0]))
        assert np.all(w > 0)

    def test_weights_decrease_with_coverage(self, simple_payoffs):
        model = QuantalResponse(simple_payoffs, rationality=0.7)
        low = model.attack_weights(np.array([0.1, 0.1, 0.1]))
        high = model.attack_weights(np.array([0.9, 0.9, 0.9]))
        assert np.all(high < low)

    def test_grid_matches_pointwise(self, simple_payoffs):
        model = QuantalResponse(simple_payoffs, rationality=0.5)
        pts = np.linspace(0, 1, 7)
        grid = model.weights_on_grid(pts)
        assert grid.shape == (3, 7)
        for j, p in enumerate(pts):
            x = np.full(3, p)
            np.testing.assert_allclose(grid[:, j], model.attack_weights(x))

    def test_choice_probabilities_normalised(self, simple_payoffs):
        model = QuantalResponse(simple_payoffs, rationality=1.2)
        q = model.choice_probabilities(np.array([0.3, 0.3, 0.4]))
        assert q.sum() == pytest.approx(1.0)
        assert np.all(q > 0)

    def test_expected_defender_utility(self, simple_payoffs):
        model = QuantalResponse(simple_payoffs, rationality=0.0)
        x = np.array([0.2, 0.4, 0.4])
        ud = simple_payoffs.defender_utilities(x)
        val = model.expected_defender_utility(ud, x)
        assert val == pytest.approx(ud.mean())

    def test_properties(self, simple_payoffs):
        model = QuantalResponse(simple_payoffs, rationality=0.9)
        assert model.rationality == 0.9
        assert model.num_targets == 3
        assert model.payoffs is simple_payoffs


class TestLogLikelihood:
    def test_matches_manual_computation(self, simple_payoffs):
        model = QuantalResponse(simple_payoffs, rationality=0.5)
        cov = np.array([[0.2, 0.4, 0.4], [0.5, 0.3, 0.2]])
        hits = np.array([0, 2])
        manual = sum(
            np.log(model.choice_probabilities(cov[i])[hits[i]]) for i in range(2)
        )
        assert model.log_likelihood(cov, hits) == pytest.approx(manual)

    def test_shape_validation(self, simple_payoffs):
        model = QuantalResponse(simple_payoffs, rationality=0.5)
        with pytest.raises(ValueError, match="2-D"):
            model.log_likelihood(np.zeros(3), np.array([0]))
        with pytest.raises(ValueError, match="equal length"):
            model.log_likelihood(np.zeros((2, 3)), np.array([0]))
