"""Tests for the Bayesian expected-utility baseline."""

import numpy as np
import pytest

from repro.baselines.bayesian import solve_bayesian
from repro.baselines.pasaq import solve_pasaq
from repro.baselines.worst_type import solve_worst_type
from repro.behavior.sampling import sample_attacker_types


class TestSolveBayesian:
    def test_single_type_matches_pasaq(self, small_interval_game, small_uncertainty):
        t = small_uncertainty.midpoint_model()
        bayes = solve_bayesian(small_interval_game, [t], num_starts=8, seed=0)
        pasaq = solve_pasaq(
            small_interval_game.midpoint_game(), t, num_segments=20, epsilon=1e-3
        )
        assert bayes.expected_value == pytest.approx(pasaq.value, abs=0.1)

    def test_expected_value_is_prior_average(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 3, seed=1)
        prior = np.array([0.5, 0.3, 0.2])
        res = solve_bayesian(small_interval_game, types, prior, num_starts=4, seed=2)
        assert res.expected_value == pytest.approx(
            float(prior @ res.per_type_values), abs=1e-9
        )

    def test_uniform_prior_default(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 4, seed=3)
        res = solve_bayesian(small_interval_game, types, num_starts=3, seed=4)
        np.testing.assert_allclose(res.prior, 0.25)

    def test_expected_at_least_worst_type(self, small_interval_game, small_uncertainty):
        """The Bayesian optimum's expected value upper-bounds the worst-
        type guarantee at the same strategy, and the Bayesian expected
        value must be >= the worst-type solver's guaranteed floor."""
        types = sample_attacker_types(small_uncertainty, 4, seed=5)
        bayes = solve_bayesian(small_interval_game, types, num_starts=5, seed=6)
        robust = solve_worst_type(small_interval_game, types, num_starts=5, seed=7)
        assert bayes.expected_value >= robust.type_value - 0.05
        assert bayes.expected_value >= bayes.per_type_values.min() - 1e-9

    def test_strategy_feasible(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 3, seed=8)
        res = solve_bayesian(small_interval_game, types, num_starts=3, seed=9)
        assert small_interval_game.strategy_space.contains(res.strategy, atol=1e-5)

    def test_prior_validation(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 2, seed=10)
        with pytest.raises(ValueError, match="sum to"):
            solve_bayesian(small_interval_game, types, prior=[0.9, 0.5])
        with pytest.raises(ValueError, match="per type"):
            solve_bayesian(small_interval_game, types, prior=[1.0])

    def test_empty_types_rejected(self, small_interval_game):
        with pytest.raises(ValueError, match="at least one"):
            solve_bayesian(small_interval_game, [])

    def test_skewed_prior_tracks_heavy_type(self, small_interval_game, small_uncertainty):
        """With a prior concentrated on one type, the solution approaches
        that type's best response."""
        types = sample_attacker_types(small_uncertainty, 2, seed=11)
        heavy = solve_bayesian(
            small_interval_game, types, prior=[0.99, 0.01], num_starts=6, seed=12
        )
        alone = solve_bayesian(small_interval_game, [types[0]], num_starts=6, seed=12)
        assert heavy.per_type_values[0] >= alone.per_type_values[0] - 0.25
