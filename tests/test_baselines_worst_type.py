"""Tests for the worst-type robust baseline."""

import numpy as np
import pytest

from repro.baselines.worst_type import solve_worst_type
from repro.behavior.sampling import corner_attacker_types, sample_attacker_types
from repro.behavior.suqr import SUQR


class TestSolveWorstType:
    def test_single_type_matches_its_optimum_roughly(self, small_interval_game, small_uncertainty):
        """With one type, worst-type = ordinary best response to it."""
        t = small_uncertainty.midpoint_model()
        res = solve_worst_type(small_interval_game, [t], num_starts=8, seed=0)
        from repro.baselines.pasaq import solve_pasaq

        pasaq = solve_pasaq(
            small_interval_game.midpoint_game(), t, num_segments=20, epsilon=1e-3
        )
        assert res.type_value == pytest.approx(pasaq.value, abs=0.15)

    def test_type_value_is_min_over_types(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 4, seed=1)
        res = solve_worst_type(small_interval_game, types, num_starts=4, seed=2)
        assert res.type_value == pytest.approx(res.per_type_values.min())
        assert len(res.per_type_values) == 4

    def test_strategy_feasible(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 3, seed=3)
        res = solve_worst_type(small_interval_game, types, num_starts=4, seed=4)
        assert small_interval_game.strategy_space.contains(res.strategy, atol=1e-5)

    def test_beats_uniform_guarantee(self, small_interval_game, small_uncertainty):
        types = corner_attacker_types(small_uncertainty)
        res = solve_worst_type(small_interval_game, types, num_starts=6, seed=5)
        x_u = small_interval_game.strategy_space.uniform()
        ud = small_interval_game.defender_utilities(x_u)
        uniform_guarantee = min(t.expected_defender_utility(ud, x_u) for t in types)
        assert res.type_value >= uniform_guarantee - 0.05

    def test_interval_worst_case_at_most_type_value(self, small_interval_game, small_uncertainty):
        """The full-interval worst case is never better than the sampled-
        type guarantee (the types are inside the interval set)."""
        from repro.core.worst_case import evaluate_worst_case

        types = sample_attacker_types(small_uncertainty, 5, seed=6)
        res = solve_worst_type(small_interval_game, types, num_starts=4, seed=7)
        full = evaluate_worst_case(small_interval_game, small_uncertainty, res.strategy)
        assert full.value <= res.type_value + 1e-6

    def test_empty_types_rejected(self, small_interval_game):
        with pytest.raises(ValueError, match="at least one"):
            solve_worst_type(small_interval_game, [])

    def test_type_target_mismatch(self, small_interval_game, small_uncertainty):
        from repro.game.generator import random_game

        other = random_game(9, seed=0)
        bad_type = SUQR(other.payoffs, (-2.0, 0.5, 0.5))
        with pytest.raises(ValueError, match="targets"):
            solve_worst_type(small_interval_game, [bad_type])

    def test_deterministic(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 3, seed=8)
        a = solve_worst_type(small_interval_game, types, num_starts=3, seed=9)
        b = solve_worst_type(small_interval_game, types, num_starts=3, seed=9)
        np.testing.assert_allclose(a.strategy, b.strategy)
