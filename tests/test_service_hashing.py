"""Property tests for the daemon's canonical request hashing.

The coalescing key (``repro.service.requests``) must satisfy two
families of properties:

* **Invariance** — JSON key order, equivalent numeric spellings
  (``2`` vs ``2.0``), and spelled-out-default options must not change
  the hash: all of these describe the same solve and must share one
  in-flight entry.
* **Distinctness** — any semantically different game / uncertainty /
  solver-options triple must hash differently, or the service would
  hand one tenant another tenant's answer.

Validation behaviour (400s) is covered at the bottom: canonicalisation
is also the daemon's input firewall.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.requests import (
    RequestError,
    SOLVE_OPTION_SPEC,
    canonicalize_request,
    instance_hash,
    request_hash,
)
from tests import fixtures_games


def _body(game=None, **extra) -> dict:
    """A valid request body over the small fixture instance."""
    from repro.analysis.io import game_to_dict, uncertainty_to_dict

    game = game if game is not None else fixtures_games.small_interval_game()
    body = {
        "game": game_to_dict(game),
        "uncertainty": uncertainty_to_dict(fixtures_games.small_suqr(game)),
    }
    body.update(extra)
    return body


def _shuffle_keys(obj, rng):
    """Deep copy with every mapping's key order permuted."""
    if isinstance(obj, dict):
        keys = list(obj)
        rng.shuffle(keys)
        return {key: _shuffle_keys(obj[key], rng) for key in keys}
    if isinstance(obj, list):
        return [_shuffle_keys(item, rng) for item in obj]
    return obj


def _respell_numbers(obj):
    """Deep copy spelling every integral float as int and every int as
    float — the JSON-number ambiguity the hash must absorb."""
    if isinstance(obj, dict):
        return {key: _respell_numbers(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_respell_numbers(item) for item in obj]
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, float) and obj == int(obj):
        return int(obj)
    if isinstance(obj, int):
        return float(obj)
    return obj


class TestInvariance:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25)
    def test_key_order_invariant(self, seed):
        import random

        body = _body(options={"num_segments": 8, "epsilon": 0.01})
        shuffled = _shuffle_keys(body, random.Random(seed))
        # Sanity: the shuffle really produced a different JSON encoding
        # at least sometimes; equality of hashes is the property.
        assert request_hash(canonicalize_request(body)) == \
            request_hash(canonicalize_request(shuffled))

    def test_numeric_spelling_invariant(self):
        body = _body(options={"num_segments": 8, "epsilon": 0.5,
                              "speculation": 2})
        respelled = _respell_numbers(json.loads(json.dumps(body)))
        # The JSON *texts* genuinely differ (dict equality would say
        # equal: Python's 2 == 2.0) — that is exactly the ambiguity the
        # hash must absorb.
        assert json.dumps(body, sort_keys=True) != \
            json.dumps(respelled, sort_keys=True)
        assert request_hash(canonicalize_request(body)) == \
            request_hash(canonicalize_request(respelled))

    def test_defaults_spelled_out_coalesce_with_omitted(self):
        defaults = {name: spec[1] for name, spec in SOLVE_OPTION_SPEC.items()}
        explicit = canonicalize_request(_body(options=defaults))
        omitted = canonicalize_request(_body())
        assert request_hash(explicit) == request_hash(omitted)

    def test_envelope_fields_do_not_hash(self):
        plain = canonicalize_request(_body())
        enveloped = canonicalize_request(
            _body(tenant="acme", mode="async"))
        assert request_hash(plain) == request_hash(enveloped)

    def test_default_uncertainty_coalesces_with_explicit(self):
        from repro.analysis.io import uncertainty_to_dict
        from repro.experiments.quality import default_uncertainty

        game = fixtures_games.small_interval_game()
        body_omitted = _body(game)
        del body_omitted["uncertainty"]
        body_explicit = _body(game)
        body_explicit["uncertainty"] = uncertainty_to_dict(
            default_uncertainty(game.payoffs))
        assert request_hash(canonicalize_request(body_omitted)) == \
            request_hash(canonicalize_request(body_explicit))

    def test_hash_is_deterministic_across_calls(self):
        body = _body()
        assert request_hash(canonicalize_request(body)) == \
            request_hash(canonicalize_request(body))


@st.composite
def _payoff_perturbation(draw):
    """(field, index, delta) touching one payoff entry of the 4-target
    fixture game."""
    field = draw(st.sampled_from([
        "defender_reward", "defender_penalty",
        "attacker_reward_lo", "attacker_reward_hi",
        "attacker_penalty_lo", "attacker_penalty_hi",
    ]))
    index = draw(st.integers(min_value=0, max_value=3))
    delta = draw(st.sampled_from([-0.75, -0.25, 0.125, 0.5, 1.0]))
    return field, index, delta


class TestDistinctness:
    @given(perturbation=_payoff_perturbation())
    @settings(max_examples=40)
    def test_any_payoff_change_changes_the_hash(self, perturbation):
        field, index, delta = perturbation
        base = _body()
        changed = json.loads(json.dumps(base))
        changed["game"][field][index] += delta
        # Interval games must stay ordered lo <= hi; skip draws that
        # break validity (they are 400s, not hash-collision material).
        try:
            canonical_changed = canonicalize_request(changed)
        except RequestError:
            return
        assert request_hash(canonicalize_request(base)) != \
            request_hash(canonical_changed)

    @given(
        which=st.sampled_from(["w1", "w2", "w3"]),
        end=st.integers(min_value=0, max_value=1),
        delta=st.sampled_from([0.01, 0.05, 0.125]),
    )
    @settings(max_examples=30)
    def test_any_uncertainty_change_changes_the_hash(self, which, end, delta):
        base = _body()
        changed = json.loads(json.dumps(base))
        box = changed["uncertainty"][which]
        # Widen the box (lo down / hi up): always a valid, semantically
        # different uncertainty model.
        if end == 0:
            box[0] = box[0] - delta
        else:
            box[1] = box[1] + delta
        assert request_hash(canonicalize_request(base)) != \
            request_hash(canonicalize_request(changed))

    @pytest.mark.parametrize("option, other", [
        ("num_segments", 12), ("epsilon", 0.1), ("backend", "bnb"),
        ("oracle", "dp"), ("equality_resources", True),
        ("execution_alpha", 0.05), ("session", "fresh"),
        ("speculation", 2), ("resilience", False),
    ])
    def test_every_option_is_hash_significant(self, option, other):
        default = {name: spec[1] for name, spec in SOLVE_OPTION_SPEC.items()}
        assert default[option] != other
        base = canonicalize_request(_body())
        changed = canonicalize_request(_body(options={option: other}))
        assert request_hash(base) != request_hash(changed)

    def test_resource_count_is_hash_significant(self):
        base = _body()
        changed = json.loads(json.dumps(base))
        changed["game"]["num_resources"] = base["game"]["num_resources"] + 1
        assert request_hash(canonicalize_request(base)) != \
            request_hash(canonicalize_request(changed))

    def test_options_do_not_leak_into_the_instance_hash(self):
        base = canonicalize_request(_body())
        changed = canonicalize_request(_body(options={"num_segments": 20}))
        assert instance_hash(base) == instance_hash(changed)
        assert request_hash(base) != request_hash(changed)


class TestValidation:
    def test_point_game_rejected(self):
        from repro.analysis.io import game_to_dict

        body = {"game": game_to_dict(fixtures_games.simple_point_game())}
        with pytest.raises(RequestError, match="interval game"):
            canonicalize_request(body)

    def test_unknown_option_rejected(self):
        with pytest.raises(RequestError, match="unknown solve options"):
            canonicalize_request(_body(options={"turbo": True}))

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(RequestError, match="unknown request fields"):
            canonicalize_request(_body(games="typo"))

    def test_non_integral_segments_rejected(self):
        with pytest.raises(RequestError, match="integral"):
            canonicalize_request(_body(options={"num_segments": 7.5}))

    def test_bad_enum_rejected(self):
        with pytest.raises(RequestError, match="backend"):
            canonicalize_request(_body(options={"backend": "cplex"}))

    def test_incremental_with_resilience_rejected(self):
        with pytest.raises(RequestError, match="incompatible"):
            canonicalize_request(
                _body(options={"session": "incremental", "resilience": True}))

    def test_incremental_without_resilience_accepted(self):
        canonical = canonicalize_request(
            _body(options={"session": "incremental", "resilience": False}))
        assert canonical["options"]["session"] == "incremental"

    def test_missing_game_rejected(self):
        with pytest.raises(RequestError, match="'game'"):
            canonicalize_request({"options": {}})

    def test_non_finite_payoffs_rejected(self):
        body = _body()
        body["game"]["defender_reward"][0] = float("inf")
        with pytest.raises(RequestError, match="finite"):
            canonicalize_request(body)
