"""Property-based tests for the conformance subsystem (repro.verify).

Two families:

* **Differential agreement** — on random well-conditioned interval games
  (coefficients quantised to 1e-3, the same trick as
  ``tests/test_solvers_bnb.py``: it keeps Hypothesis's shrinker effective
  and avoids degenerate near-ties), the cross-solver checker must pass:
  the independent solver paths agree within the derived tolerance and
  every theorem predicate holds at the returned optimum.
* **Report round-trip** — ``ConformanceReport`` survives
  ``to_dict -> json -> from_dict`` exactly, for arbitrary check
  contents.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.behavior.interval import IntervalSUQR
from repro.game.payoffs import IntervalPayoffs
from repro.game.ssg import IntervalSecurityGame
from repro.verify import (
    ConformanceCheck,
    ConformanceReport,
    check_beta_elimination,
    check_segment_bound,
    check_value_point,
    differential_check,
)

# The 1e-3 coefficient quantisation shared with tests/test_solvers_bnb.py.
fl = st.floats(-5, 5, allow_nan=False).map(lambda v: round(v, 3))
pos = st.floats(0.5, 5, allow_nan=False).map(lambda v: round(v, 3))
halfwidth = st.floats(0.05, 0.75, allow_nan=False).map(lambda v: round(v, 3))


@st.composite
def random_games(draw, min_targets=2, max_targets=4):
    """A quantised random interval game + tight-convention SUQR model."""
    n = draw(st.integers(min_targets, max_targets))
    rewards = np.array([draw(pos) for _ in range(n)])
    penalties = -np.array([draw(pos) for _ in range(n)])
    h = draw(halfwidth)
    payoffs = IntervalPayoffs.zero_sum_midpoint(
        attacker_reward_lo=rewards,
        attacker_reward_hi=rewards + 2 * h,
        attacker_penalty_lo=penalties - 2 * h,
        attacker_penalty_hi=penalties,
    )
    game = IntervalSecurityGame(payoffs, num_resources=1)
    uncertainty = IntervalSUQR(
        game.payoffs,
        w1=(-4.0, -1.0),
        w2=(0.6, 0.9),
        w3=(0.3, 0.6),
        convention="tight",
    )
    return game, uncertainty


@st.composite
def random_strategies(draw, game):
    """A feasible coverage vector for ``game`` (quantised)."""
    raw = np.array([
        draw(st.floats(0.0, 1.0, allow_nan=False).map(lambda v: round(v, 3)))
        for _ in range(game.num_targets)
    ])
    total = raw.sum()
    if total > game.num_resources:
        raw = raw * (game.num_resources / total)
    return raw


class TestDifferentialProperty:
    @given(random_games())
    @settings(max_examples=10, deadline=None)  # cost-bound: 4 solves/example
    def test_solver_paths_agree_on_well_conditioned_games(self, instance):
        game, uncertainty = instance
        checks = differential_check(
            game,
            uncertainty,
            num_segments=6,
            epsilon=1e-2,
            paths=("milp-highs", "milp-bnb", "milp-session", "dp"),
        )
        failures = [c for c in checks if not c.passed]
        assert not failures, "\n".join(
            f"{c.name}: {c.detail} (context {c.context})" for c in failures
        )

    @given(random_games())
    @settings(max_examples=15, deadline=None)
    def test_theorem_predicates_hold_at_arbitrary_strategies(self, instance):
        game, uncertainty = instance
        # The theorem predicates are claims about *any* (x, c), not just
        # optima — check them at the uniform coverage strategy.
        x = np.full(game.num_targets, game.num_resources / game.num_targets)
        value_check = check_value_point(game, uncertainty, x)
        assert value_check.passed, value_check.detail
        c = value_check.context["root"]
        beta_check = check_beta_elimination(game, uncertainty, x, c, num_probes=16)
        assert beta_check.passed, beta_check.detail
        segment_check = check_segment_bound(game, uncertainty, 6, refine=9)
        assert segment_check.passed, segment_check.detail

    @given(random_games(), st.floats(-6, 6, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_beta_elimination_at_arbitrary_levels(self, instance, c):
        """Proposition 3 holds at any candidate level, not just the root."""
        game, uncertainty = instance
        x = np.full(game.num_targets, game.num_resources / game.num_targets)
        check = check_beta_elimination(game, uncertainty, x, round(c, 3),
                                       num_probes=16)
        assert check.passed, check.detail


json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-10**9, 10**9),
    st.floats(-1e9, 1e9, allow_nan=False),
    st.text(max_size=20),
)
contexts = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.one_of(json_scalars, st.lists(json_scalars, max_size=3)),
    max_size=4,
)
checks_strategy = st.builds(
    ConformanceCheck,
    name=st.text(min_size=1, max_size=30),
    passed=st.booleans(),
    detail=st.text(max_size=50),
    measured=st.one_of(st.none(), st.floats(-1e9, 1e9, allow_nan=False)),
    bound=st.one_of(st.none(), st.floats(-1e9, 1e9, allow_nan=False)),
    context=contexts,
)


class TestReportRoundTrip:
    @given(
        st.text(min_size=1, max_size=30),
        st.lists(checks_strategy, max_size=5),
        st.one_of(st.none(), st.integers(0, 2**31 - 1)),
        contexts,
    )
    @settings(max_examples=100, deadline=None)
    def test_report_json_round_trip(self, instance, checks, seed, metadata):
        report = ConformanceReport(
            instance=instance, checks=tuple(checks), seed=seed, metadata=metadata
        )
        assert report.round_trips()

    @given(st.lists(checks_strategy, min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_passed_and_failures_are_consistent(self, checks):
        report = ConformanceReport(instance="x", checks=tuple(checks))
        assert report.passed == (len(report.failures()) == 0)
        assert all(not c.passed for c in report.failures())
        head = report.summary().splitlines()[0]
        assert ("PASS" in head) == report.passed
