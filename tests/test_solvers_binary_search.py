"""Unit tests for repro.solvers.binary_search."""

import warnings

import pytest

from repro import telemetry
from repro.solvers.binary_search import binary_search_max


def threshold_oracle(threshold, payload="ok"):
    """Feasible exactly on (-inf, threshold]."""

    def oracle(c):
        return c <= threshold, payload if c <= threshold else None

    return oracle


class TestBinarySearchMax:
    def test_finds_threshold(self):
        res = binary_search_max(threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-6)
        assert res.lower == pytest.approx(0.37, abs=1e-5)
        assert res.upper - res.lower <= 1e-6
        assert res.payload == "ok"

    def test_whole_interval_feasible(self):
        res = binary_search_max(threshold_oracle(5.0), 0.0, 1.0)
        assert res.lower == res.upper == 1.0
        assert res.gap == 0.0

    def test_nothing_feasible(self):
        res = binary_search_max(threshold_oracle(-5.0), 0.0, 1.0)
        assert res.lower == -float("inf")
        assert res.payload is None

    def test_payload_tracks_last_feasible(self):
        calls = []

        def oracle(c):
            calls.append(c)
            return (c <= 0.5, f"x at {c}") if c <= 0.5 else (False, None)

        res = binary_search_max(oracle, 0.0, 1.0, tolerance=1e-3)
        assert res.payload.startswith("x at ")
        assert float(res.payload.split()[-1]) <= 0.5

    def test_trace_records_all_calls(self):
        res = binary_search_max(threshold_oracle(0.25), 0.0, 1.0, tolerance=0.1)
        assert res.iterations == len(res.trace)
        for c, feasible in res.trace:
            assert feasible == (c <= 0.25)

    def test_max_iterations_cap(self):
        with pytest.warns(RuntimeWarning, match="max_iterations=5"):
            res = binary_search_max(
                threshold_oracle(0.5), 0.0, 1.0, tolerance=1e-12, max_iterations=5
            )
        assert res.iterations <= 5

    def test_exhaustion_sets_converged_false(self):
        with pytest.warns(RuntimeWarning, match="exhausted"):
            res = binary_search_max(
                threshold_oracle(0.5), 0.0, 1.0, tolerance=1e-12, max_iterations=3
            )
        assert not res.converged
        assert res.gap > 1e-12

    def test_normal_run_sets_converged_true(self):
        res = binary_search_max(threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-4)
        assert res.converged

    def test_endpoint_shortcuts_converge(self):
        assert binary_search_max(threshold_oracle(5.0), 0.0, 1.0).converged
        assert not binary_search_max(threshold_oracle(-5.0), 0.0, 1.0).converged

    def test_invalid_interval(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            binary_search_max(threshold_oracle(0.0), 1.0, 0.0)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            binary_search_max(threshold_oracle(0.0), 0.0, 1.0, tolerance=0.0)

    def test_no_endpoint_checks(self):
        """Without endpoint checks, the search assumes lo feasible."""
        res = binary_search_max(
            threshold_oracle(0.6), 0.0, 1.0, tolerance=1e-4, check_endpoints=False
        )
        assert res.lower == pytest.approx(0.6, abs=1e-3)

    def test_gap_property(self):
        res = binary_search_max(threshold_oracle(0.3), 0.0, 1.0, tolerance=0.01)
        assert res.gap == res.upper - res.lower
        assert res.gap <= 0.01

    def test_monotone_convergence(self):
        """Tighter tolerance never yields a worse lower bound."""
        loose = binary_search_max(threshold_oracle(0.71), 0.0, 1.0, tolerance=0.1)
        tight = binary_search_max(threshold_oracle(0.71), 0.0, 1.0, tolerance=1e-5)
        assert tight.lower >= loose.lower - 1e-12


class TestNothingFeasibleContract:
    """Regression: with ``check_endpoints=False`` the search used to report
    ``lower=lo, converged=True`` when no candidate was ever feasible, even
    though ``lo`` was never probed.  Both flag values must now agree on
    ``lower=-inf, converged=False, payload=None``."""

    @pytest.mark.parametrize("check_endpoints", [True, False])
    def test_always_infeasible_oracle(self, check_endpoints):
        res = binary_search_max(
            threshold_oracle(-5.0), 0.0, 1.0,
            tolerance=1e-3, check_endpoints=check_endpoints,
        )
        assert res.lower == -float("inf")
        assert res.payload is None
        assert not res.converged
        assert all(not feasible for _, feasible in res.trace)

    def test_unproven_lo_is_not_reported_feasible(self):
        """The returned lower bound must never be a value the oracle did
        not confirm."""
        probed = []

        def oracle(c):
            probed.append(c)
            return False, None

        res = binary_search_max(
            oracle, 0.0, 1.0, tolerance=1e-3, check_endpoints=False
        )
        assert 0.0 not in probed  # lo genuinely never tested
        assert res.lower == -float("inf")


class TestOracleFailurePaths:
    """A crashing oracle must surface, never be absorbed into a verdict."""

    def failing_at(self, bad_candidate, threshold=0.5, exc=RuntimeError):
        def oracle(c):
            if c == pytest.approx(bad_candidate, abs=1e-12):
                raise exc(f"oracle crashed at {c}")
            return c <= threshold, "ok" if c <= threshold else None

        return oracle

    def test_midpoint_crash_propagates(self):
        # First bisection midpoint of [0, 1] after endpoint checks is 0.5.
        with pytest.raises(RuntimeError, match="oracle crashed at 0.5"):
            binary_search_max(self.failing_at(0.5), 0.0, 1.0, tolerance=1e-3)

    def test_endpoint_crash_propagates(self):
        with pytest.raises(RuntimeError, match="oracle crashed at 1"):
            binary_search_max(self.failing_at(1.0), 0.0, 1.0)

    def test_guess_crash_propagates(self):
        with pytest.raises(RuntimeError, match="oracle crashed at 0.3"):
            binary_search_max(
                self.failing_at(0.3), 0.0, 1.0,
                tolerance=1e-3, initial_guesses=(0.3,),
            )

    def test_crash_marks_step_span_error(self):
        tele = telemetry.Telemetry()
        with telemetry.use(tele):
            with pytest.raises(RuntimeError):
                binary_search_max(self.failing_at(0.5), 0.0, 1.0, tolerance=1e-3)
        steps = [s for s in tele.spans if s.name == "binary_search.step"]
        assert steps, "oracle calls must be traced"
        failed = steps[-1]
        assert failed.status == "error"
        assert failed.attributes["c"] == pytest.approx(0.5)
        assert "RuntimeError" in failed.error

    def test_payload_bound_crash_propagates(self):
        def oracle(c):
            return (c <= 0.5, "witness") if c <= 0.5 else (False, None)

        def bad_bound(payload):
            raise ValueError("certificate evaluation failed")

        with pytest.raises(ValueError, match="certificate evaluation failed"):
            binary_search_max(
                oracle, 0.0, 1.0, tolerance=1e-3, payload_bound=bad_bound
            )

    def test_partial_trace_survives_in_successful_rerun(self):
        """A crash loses no monotone information: re-running with the
        fixed oracle from the same bracket reproduces the clean answer."""
        clean = binary_search_max(
            self.failing_at(-99.0), 0.0, 1.0, tolerance=1e-4
        )
        assert clean.lower == pytest.approx(0.5, abs=1e-3)

    def test_nothing_feasible_exhaustion_no_spurious_warning(self):
        """The nothing-feasible return path (check_endpoints=False) must
        not also emit the max_iterations warning — it reports
        ``lower=-inf, converged=False`` directly."""

        def never_feasible(c):
            return False, None

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            res = binary_search_max(
                never_feasible, 0.0, 1.0,
                tolerance=1e-12, max_iterations=3, check_endpoints=False,
            )
        assert res.lower == -float("inf")
        assert res.payload is None
        assert not res.converged


class TestWarmStartHooks:
    def count_calls(self, oracle):
        calls = []

        def counting(c):
            calls.append(c)
            return oracle(c)

        return counting, calls

    def test_good_guesses_cut_oracle_calls(self):
        cold = binary_search_max(threshold_oracle(0.6), 0.0, 1.0, tolerance=1e-4)
        warm = binary_search_max(
            threshold_oracle(0.6), 0.0, 1.0, tolerance=1e-4,
            initial_guesses=(0.60005, 0.6 - 1e-5),
        )
        assert warm.lower == pytest.approx(0.6, abs=1e-4)
        assert warm.iterations < cold.iterations

    def test_feasible_guess_raises_lower(self):
        res = binary_search_max(
            threshold_oracle(0.6), 0.0, 1.0, tolerance=1e-4,
            initial_guesses=(0.55,),
        )
        assert (0.55, True) in res.trace
        assert res.lower >= 0.55

    def test_infeasible_guess_lowers_upper(self):
        res = binary_search_max(
            threshold_oracle(0.6), 0.0, 1.0, tolerance=1e-4,
            initial_guesses=(0.9,),
        )
        assert (0.9, False) in res.trace
        assert res.upper <= 0.9

    def test_out_of_bracket_guesses_skipped(self):
        oracle, calls = self.count_calls(threshold_oracle(0.6))
        binary_search_max(
            oracle, 0.0, 1.0, tolerance=1e-4,
            initial_guesses=(-3.0, 0.0, 1.0, 7.5),
        )
        for skipped in (-3.0, 7.5):
            assert skipped not in calls

    def test_stale_guesses_cannot_corrupt_result(self):
        """Wildly wrong guesses cost oracle calls but the answer stands."""
        res = binary_search_max(
            threshold_oracle(0.6), 0.0, 1.0, tolerance=1e-4,
            initial_guesses=(0.01, 0.99, 0.02, 0.98),
        )
        assert res.lower == pytest.approx(0.6, abs=1e-4)
        assert res.converged

    def test_payload_bound_jumps_lower(self):
        """A payload certifying the true threshold collapses the search."""

        def oracle(c):
            return (c <= 0.6, "witness") if c <= 0.6 else (False, None)

        cold = binary_search_max(oracle, 0.0, 1.0, tolerance=1e-6)
        warm = binary_search_max(
            oracle, 0.0, 1.0, tolerance=1e-6,
            payload_bound=lambda payload: 0.6,
        )
        assert warm.lower == pytest.approx(0.6, abs=1e-6)
        assert warm.iterations < cold.iterations

    def test_payload_bound_pins_exact_threshold(self):
        """A truthful bound pins the lower end exactly while bisection
        closes in from above, never past the proven-infeasible upper."""
        res = binary_search_max(
            threshold_oracle(0.65), 0.0, 1.0, tolerance=1e-6,
            initial_guesses=(0.7,),  # proves upper <= 0.7 first
            payload_bound=lambda payload: 0.65,
        )
        assert res.lower == pytest.approx(0.65, abs=1e-12)
        assert res.lower <= res.upper <= 0.7

    def test_payload_bound_below_candidate_ignored(self):
        res = binary_search_max(
            threshold_oracle(0.6), 0.0, 1.0, tolerance=1e-4,
            payload_bound=lambda payload: -100.0,
        )
        assert res.lower == pytest.approx(0.6, abs=1e-4)


class TestSpeculativeBisection:
    """k-ary speculative rounds: same answer as classic bisection, fewer
    rounds, deterministic bracket rule, faithful waste accounting."""

    def test_same_answer_as_classic(self):
        classic = binary_search_max(threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-6)
        for k in (2, 3, 5):
            spec = binary_search_max(
                threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-6, speculation=k
            )
            assert spec.converged
            assert spec.lower <= 0.37 + 1e-12
            assert spec.upper >= 0.37 - 1e-12
            assert spec.gap <= 1e-6
            assert abs(spec.lower - classic.lower) <= 1e-6

    def test_fewer_rounds_more_probes(self):
        classic = binary_search_max(threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-6)
        spec = binary_search_max(
            threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-6, speculation=3
        )
        # (k+1)x bracket shrink per round: far fewer rounds than classic
        # steps, at the cost of extra total probes.
        classic_steps = classic.iterations - 2  # minus endpoint checks
        assert spec.speculative_rounds < classic_steps
        assert spec.speculative_probes >= classic_steps
        assert spec.iterations == len(spec.trace)

    def test_classic_mode_reports_zero_speculation(self):
        res = binary_search_max(threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-3)
        assert res.speculative_rounds == 0
        assert res.speculative_probes == 0
        assert res.wasted_probes == 0

    def test_wasted_probe_accounting(self):
        """Each round wastes exactly k minus the bracket-defining pair."""
        res = binary_search_max(
            threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-4, speculation=4
        )
        assert 0 <= res.wasted_probes <= res.speculative_probes
        # With both verdicts present in a round, waste is k - 2.
        assert res.wasted_probes >= res.speculative_rounds * (4 - 2) - 4

    def test_probe_batch_equals_sequential(self):
        """Routing rounds through probe_batch must reproduce the
        sequential trace bit for bit (determinism by verdict order)."""
        seq = binary_search_max(
            threshold_oracle(0.61), 0.0, 1.0, tolerance=1e-5, speculation=3
        )
        batched = binary_search_max(
            threshold_oracle(0.61), 0.0, 1.0, tolerance=1e-5, speculation=3,
            probe_batch=lambda cs: [threshold_oracle(0.61)(c) for c in cs],
        )
        assert batched.trace == seq.trace
        assert batched.lower == seq.lower
        assert batched.upper == seq.upper
        assert batched.wasted_probes == seq.wasted_probes

    def test_out_of_order_batch_completion_is_irrelevant(self):
        """The bracket depends only on verdicts: a batch that computes
        answers in reverse order returns the same result."""

        def reversed_batch(cs):
            answers = {c: threshold_oracle(0.61)(c) for c in reversed(cs)}
            return [answers[c] for c in cs]

        forward = binary_search_max(
            threshold_oracle(0.61), 0.0, 1.0, tolerance=1e-5, speculation=3,
            probe_batch=lambda cs: [threshold_oracle(0.61)(c) for c in cs],
        )
        backward = binary_search_max(
            threshold_oracle(0.61), 0.0, 1.0, tolerance=1e-5, speculation=3,
            probe_batch=reversed_batch,
        )
        assert forward.trace == backward.trace
        assert forward.lower == backward.lower

    def test_nothing_feasible_contract_speculative(self):
        res = binary_search_max(
            threshold_oracle(-5.0), 0.0, 1.0,
            tolerance=1e-3, speculation=3, check_endpoints=False,
        )
        assert res.lower == -float("inf")
        assert res.payload is None
        assert not res.converged

    def test_round_spans_and_step_events(self):
        tele = telemetry.Telemetry()
        with telemetry.use(tele):
            res = binary_search_max(
                threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-3, speculation=3,
                probe_batch=lambda cs: [threshold_oracle(0.37)(c) for c in cs],
            )
        rounds = [s for s in tele.spans if s.name == "binary_search.round"]
        assert len(rounds) == res.speculative_rounds
        steps = [s for s in tele.spans if s.name == "binary_search.step"]
        speculative = [s for s in steps if s.attributes.get("speculative")]
        assert len(speculative) == res.speculative_probes

    def test_batch_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="probe_batch returned"):
            binary_search_max(
                threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-3, speculation=3,
                probe_batch=lambda cs: [(False, None)],
            )

    @pytest.mark.parametrize("bad", [0, -1, 2.5])
    def test_invalid_speculation_rejected(self, bad):
        with pytest.raises(ValueError, match="speculation"):
            binary_search_max(
                threshold_oracle(0.37), 0.0, 1.0, speculation=bad
            )

    def test_max_iterations_respected(self):
        with pytest.warns(RuntimeWarning, match="exhausted"):
            res = binary_search_max(
                threshold_oracle(0.5), 0.0, 1.0,
                tolerance=1e-12, max_iterations=7, speculation=3,
            )
        assert res.iterations <= 7
