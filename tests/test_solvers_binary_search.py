"""Unit tests for repro.solvers.binary_search."""

import pytest

from repro.solvers.binary_search import binary_search_max


def threshold_oracle(threshold, payload="ok"):
    """Feasible exactly on (-inf, threshold]."""

    def oracle(c):
        return c <= threshold, payload if c <= threshold else None

    return oracle


class TestBinarySearchMax:
    def test_finds_threshold(self):
        res = binary_search_max(threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-6)
        assert res.lower == pytest.approx(0.37, abs=1e-5)
        assert res.upper - res.lower <= 1e-6
        assert res.payload == "ok"

    def test_whole_interval_feasible(self):
        res = binary_search_max(threshold_oracle(5.0), 0.0, 1.0)
        assert res.lower == res.upper == 1.0
        assert res.gap == 0.0

    def test_nothing_feasible(self):
        res = binary_search_max(threshold_oracle(-5.0), 0.0, 1.0)
        assert res.lower == -float("inf")
        assert res.payload is None

    def test_payload_tracks_last_feasible(self):
        calls = []

        def oracle(c):
            calls.append(c)
            return (c <= 0.5, f"x at {c}") if c <= 0.5 else (False, None)

        res = binary_search_max(oracle, 0.0, 1.0, tolerance=1e-3)
        assert res.payload.startswith("x at ")
        assert float(res.payload.split()[-1]) <= 0.5

    def test_trace_records_all_calls(self):
        res = binary_search_max(threshold_oracle(0.25), 0.0, 1.0, tolerance=0.1)
        assert res.iterations == len(res.trace)
        for c, feasible in res.trace:
            assert feasible == (c <= 0.25)

    def test_max_iterations_cap(self):
        with pytest.warns(RuntimeWarning, match="max_iterations=5"):
            res = binary_search_max(
                threshold_oracle(0.5), 0.0, 1.0, tolerance=1e-12, max_iterations=5
            )
        assert res.iterations <= 5

    def test_exhaustion_sets_converged_false(self):
        with pytest.warns(RuntimeWarning, match="exhausted"):
            res = binary_search_max(
                threshold_oracle(0.5), 0.0, 1.0, tolerance=1e-12, max_iterations=3
            )
        assert not res.converged
        assert res.gap > 1e-12

    def test_normal_run_sets_converged_true(self):
        res = binary_search_max(threshold_oracle(0.37), 0.0, 1.0, tolerance=1e-4)
        assert res.converged

    def test_endpoint_shortcuts_converge(self):
        assert binary_search_max(threshold_oracle(5.0), 0.0, 1.0).converged
        assert not binary_search_max(threshold_oracle(-5.0), 0.0, 1.0).converged

    def test_invalid_interval(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            binary_search_max(threshold_oracle(0.0), 1.0, 0.0)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            binary_search_max(threshold_oracle(0.0), 0.0, 1.0, tolerance=0.0)

    def test_no_endpoint_checks(self):
        """Without endpoint checks, the search assumes lo feasible."""
        res = binary_search_max(
            threshold_oracle(0.6), 0.0, 1.0, tolerance=1e-4, check_endpoints=False
        )
        assert res.lower == pytest.approx(0.6, abs=1e-3)

    def test_gap_property(self):
        res = binary_search_max(threshold_oracle(0.3), 0.0, 1.0, tolerance=0.01)
        assert res.gap == res.upper - res.lower
        assert res.gap <= 0.01

    def test_monotone_convergence(self):
        """Tighter tolerance never yields a worse lower bound."""
        loose = binary_search_max(threshold_oracle(0.71), 0.0, 1.0, tolerance=0.1)
        tight = binary_search_max(threshold_oracle(0.71), 0.0, 1.0, tolerance=1e-5)
        assert tight.lower >= loose.lower - 1e-12
