"""Tests for the PASAQ baseline (known-model defender optimisation)."""

import numpy as np
import pytest

from repro.baselines.pasaq import solve_pasaq
from repro.behavior.qr import QuantalResponse
from repro.behavior.suqr import SUQR
from repro.game.generator import random_game
from repro.game.ssg import SecurityGame


def brute_force_2t(game, model, grid_points=801):
    best_x, best_v = None, -np.inf
    for a in np.linspace(0, 1, grid_points):
        x = np.array([a, 1.0 - a])
        v = model.expected_defender_utility(game.defender_utilities(x), x)
        if v > best_v:
            best_v, best_x = v, x
    return best_x, best_v


class TestPasaqOptimality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force_suqr(self, seed):
        game = random_game(2, num_resources=1, seed=seed)
        model = SUQR(game.payoffs, (-3.0, 0.8, 0.5))
        bx, bv = brute_force_2t(game, model)
        result = solve_pasaq(game, model, num_segments=30, epsilon=1e-4)
        assert result.value == pytest.approx(bv, abs=0.02)

    def test_matches_brute_force_qr(self):
        game = random_game(2, num_resources=1, seed=5)
        model = QuantalResponse(game.payoffs, rationality=0.8)
        bx, bv = brute_force_2t(game, model)
        result = solve_pasaq(game, model, num_segments=30, epsilon=1e-4)
        assert result.value == pytest.approx(bv, abs=0.02)

    def test_beats_uniform(self, simple_game):
        model = SUQR(simple_game.payoffs, (-2.0, 0.7, 0.4))
        result = solve_pasaq(simple_game, model, num_segments=15, epsilon=1e-3)
        x_u = simple_game.strategy_space.uniform()
        uniform_v = model.expected_defender_utility(
            simple_game.defender_utilities(x_u), x_u
        )
        assert result.value >= uniform_v - 0.02


class TestPasaqMechanics:
    def test_strategy_feasible(self, simple_game):
        model = SUQR(simple_game.payoffs, (-2.0, 0.7, 0.4))
        result = solve_pasaq(simple_game, model, num_segments=10, epsilon=0.01)
        assert simple_game.strategy_space.contains(result.strategy, atol=1e-6)

    def test_bracket_contains_value(self, simple_game):
        model = SUQR(simple_game.payoffs, (-2.0, 0.7, 0.4))
        result = solve_pasaq(simple_game, model, num_segments=20, epsilon=1e-3)
        # The approximated optimum is bracketed; the exact value of the
        # returned strategy should sit within O(1/K) of the bracket.
        assert result.value >= result.lower_bound - 0.25
        assert result.value <= result.upper_bound + 0.25

    def test_bracket_width(self, simple_game):
        model = SUQR(simple_game.payoffs, (-2.0, 0.7, 0.4))
        result = solve_pasaq(simple_game, model, num_segments=10, epsilon=1e-3)
        assert result.upper_bound - result.lower_bound <= 1e-3 + 1e-12

    def test_target_mismatch(self, simple_game):
        other = random_game(7, seed=0)
        model = SUQR(other.payoffs, (-2.0, 0.7, 0.4))
        with pytest.raises(ValueError, match="targets"):
            solve_pasaq(simple_game, model)

    def test_invalid_epsilon(self, simple_game):
        model = SUQR(simple_game.payoffs, (-2.0, 0.7, 0.4))
        with pytest.raises(ValueError, match="epsilon"):
            solve_pasaq(simple_game, model, epsilon=-1.0)

    def test_backends_agree(self, simple_game):
        model = SUQR(simple_game.payoffs, (-2.0, 0.7, 0.4))
        a = solve_pasaq(simple_game, model, num_segments=6, epsilon=0.05, backend="highs")
        b = solve_pasaq(simple_game, model, num_segments=6, epsilon=0.05, backend="bnb")
        assert a.lower_bound == pytest.approx(b.lower_bound, abs=1e-9)

    def test_rational_attacker_limit(self):
        """With a very sharp QR attacker, PASAQ's coverage should chase the
        attacker's preferred target."""
        game = random_game(3, num_resources=1, seed=8, zero_sum=True)
        sharp = QuantalResponse(game.payoffs, rationality=8.0)
        result = solve_pasaq(game, sharp, num_segments=20, epsilon=1e-3)
        # The attacker's top target at the found strategy gets real coverage.
        q = sharp.choice_probabilities(result.strategy)
        assert result.strategy[np.argmax(q)] > 0.1


class TestPasaqResilience:
    def test_converged_flag_default(self, simple_game):
        model = SUQR(simple_game.payoffs, (-2.0, 0.7, 0.4))
        result = solve_pasaq(simple_game, model, num_segments=8, epsilon=0.01)
        assert result.converged
        assert not result.degraded and result.resilience is None

    def test_validates_num_segments(self, simple_game):
        model = SUQR(simple_game.payoffs, (-2.0, 0.7, 0.4))
        with pytest.raises(ValueError, match="num_segments"):
            solve_pasaq(simple_game, model, num_segments=0)
        with pytest.raises(ValueError, match="max_iterations"):
            solve_pasaq(simple_game, model, max_iterations=0)

    def test_ladder_strips_dp_rung(self, simple_game):
        from repro.resilience import ResiliencePolicy

        model = SUQR(simple_game.payoffs, (-2.0, 0.7, 0.4))
        result = solve_pasaq(
            simple_game, model, num_segments=8, epsilon=0.01,
            resilience=ResiliencePolicy(),
        )
        assert result.resilience is not None
        assert all("milp" in label for label in result.resilience.rung_labels)
        assert not result.degraded

    def test_recovers_from_injected_faults(self, simple_game):
        from repro.resilience import FaultInjector, ResiliencePolicy, injected_policy

        model = SUQR(simple_game.payoffs, (-2.0, 0.7, 0.4))
        clean = solve_pasaq(simple_game, model, num_segments=8, epsilon=0.01)
        injector = FaultInjector(0.5, seed=11)
        policy = injected_policy(injector, ResiliencePolicy(max_retries=4))
        faulty = solve_pasaq(
            simple_game, model, num_segments=8, epsilon=0.01,
            resilience=policy,
        )
        assert injector.faults > 0
        assert faulty.value == pytest.approx(clean.value, abs=1e-9)
        assert faulty.degraded == (faulty.resilience.rung_counts[1] > 0)
