"""Trace analysis: loading, critical path, self-time, flamegraph, diff.

Includes the acceptance checks: the critical path's telescoped wall time
matches the root span's duration within 5%, and a diff names the top
span-level deltas.  Torn-trailing-line tolerance mirrors the sweep
store's torn-write policy.
"""

import json

import pytest

from repro import telemetry
from repro.obs.traces import (
    Trace,
    build_children,
    critical_path,
    diff_traces,
    flamegraph_lines,
    format_critical_path,
    format_diff,
    format_report,
    load_trace,
    self_time_by_name,
)
from repro.telemetry import Telemetry, write_jsonl
from repro.telemetry.spans import SpanRecord


def _span(span_id, parent_id, name, start, duration, depth,
          cpu_time=0.0, **attributes) -> SpanRecord:
    return SpanRecord(
        span_id=span_id, parent_id=parent_id, name=name, start=start,
        duration=duration, depth=depth, attributes=attributes,
        cpu_time=cpu_time,
    )


@pytest.fixture
def nested_trace() -> Trace:
    """root(10s) -> a(7s) -> leaf(5s); root -> b(2s)."""
    return Trace(path="synthetic", spans=(
        _span(1, None, "root", 0.0, 10.0, 0, cpu_time=1.0),
        _span(2, 1, "a", 0.5, 7.0, 1, cpu_time=6.0),
        _span(3, 2, "leaf", 1.0, 5.0, 2, cpu_time=5.0),
        _span(4, 1, "b", 8.0, 2.0, 1, cpu_time=2.0),
    ))


def _solve_trace(tmp_path, seed: int = 11, epsilon: float = 0.02):
    """A real traced solve, written and re-loaded through JSONL."""
    from repro.core.cubis import solve_cubis
    from repro.experiments.quality import default_uncertainty
    from repro.game.generator import random_interval_game

    tele = Telemetry()
    game = random_interval_game(5, seed=seed)
    with telemetry.use(tele):
        with tele.span("test.root"):
            solve_cubis(
                game, default_uncertainty(game.payoffs),
                num_segments=6, epsilon=epsilon,
            )
    path = tmp_path / f"trace_{seed}_{epsilon}.jsonl"
    write_jsonl(tele, path)
    return load_trace(path)


class TestLoadTrace:
    def test_round_trip_through_jsonl(self, tmp_path):
        trace = _solve_trace(tmp_path)
        assert trace.skipped_lines == 0
        assert len(trace.spans) > 0
        assert len(trace.roots) == 1
        assert trace.roots[0].name == "test.root"
        # Span ids are ordered, parent links resolve.
        ids = {s.span_id for s in trace.spans}
        for span in trace.spans:
            assert span.parent_id is None or span.parent_id in ids

    def test_metrics_are_captured(self, tmp_path):
        trace = _solve_trace(tmp_path)
        assert any(m["type"] == "histogram" for m in trace.metrics)

    def test_torn_trailing_line_warns_and_skips(self, tmp_path):
        trace = _solve_trace(tmp_path)
        torn = tmp_path / "torn.jsonl"
        text = (tmp_path / f"trace_11_0.02.jsonl").read_text()
        torn.write_text(text + '{"type": "span", "span_id": 99, "trunc')
        with pytest.warns(UserWarning, match="skipped 1 undecodable"):
            reloaded = load_trace(torn)
        assert reloaded.skipped_lines == 1
        assert len(reloaded.spans) == len(trace.spans)

    def test_garbage_middle_line_skipped(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        good = json.dumps(_span(1, None, "root", 0.0, 1.0, 0).to_dict())
        path.write_text("not json at all\n" + good + "\n\x00\x01\n")
        with pytest.warns(UserWarning, match="skipped 2"):
            trace = load_trace(path)
        assert [s.name for s in trace.spans] == ["root"]

    def test_span_missing_required_key_skipped(self, tmp_path):
        path = tmp_path / "missing.jsonl"
        path.write_text('{"type": "span", "span_id": 1}\n')
        with pytest.warns(UserWarning):
            trace = load_trace(path)
        assert trace.spans == ()

    def test_unknown_record_types_ignored_silently(self, tmp_path):
        path = tmp_path / "extra.jsonl"
        good = json.dumps(_span(1, None, "root", 0.0, 1.0, 0).to_dict())
        path.write_text(
            '{"type": "meta", "format_version": 1}\n'
            + good + "\n"
            + '{"type": "conformance", "instance": "x"}\n'
        )
        trace = load_trace(path)  # no warning expected
        assert trace.skipped_lines == 0
        assert len(trace.spans) == 1


class TestCriticalPath:
    def test_greedy_descent(self, nested_trace):
        path = critical_path(nested_trace)
        assert [step.span.name for step in path] == ["root", "a", "leaf"]

    def test_exclusive_telescopes_to_root(self, nested_trace):
        path = critical_path(nested_trace)
        total = sum(step.exclusive for step in path)
        assert total == pytest.approx(10.0)

    def test_empty_trace(self):
        assert critical_path(Trace(path="empty", spans=())) == []

    def test_acceptance_within_5_percent_of_root(self, tmp_path):
        """The acceptance criterion, on a real solve trace."""
        trace = _solve_trace(tmp_path)
        root = trace.roots[0]
        path = critical_path(trace)
        assert path[0].span is root
        children = build_children(trace.spans)
        assert path[-1].span.span_id not in children  # a true leaf
        total = sum(step.exclusive for step in path)
        assert total == pytest.approx(root.duration, rel=0.05)

    def test_explicit_root(self, nested_trace):
        path = critical_path(nested_trace, root=nested_trace.spans[1])
        assert [step.span.name for step in path] == ["a", "leaf"]
        assert sum(s.exclusive for s in path) == pytest.approx(7.0)


class TestSelfTime:
    def test_self_time_subtracts_children(self, nested_trace):
        stats = {s.name: s for s in self_time_by_name(nested_trace)}
        assert stats["root"].wall_self == pytest.approx(10.0 - 7.0 - 2.0)
        assert stats["a"].wall_self == pytest.approx(7.0 - 5.0)
        assert stats["leaf"].wall_self == pytest.approx(5.0)
        assert stats["b"].wall_self == pytest.approx(2.0)

    def test_cpu_self_time(self, nested_trace):
        stats = {s.name: s for s in self_time_by_name(nested_trace)}
        # root cpu 1.0 with children cpu 6+2=8 -> clamped to 0.
        assert stats["root"].cpu_self == 0.0
        assert stats["a"].cpu_self == pytest.approx(1.0)

    def test_total_self_time_conserved(self, tmp_path):
        # Summed self time over all names equals summed root durations
        # (every nanosecond belongs to exactly one innermost span).
        trace = _solve_trace(tmp_path)
        total_self = sum(s.wall_self for s in self_time_by_name(trace))
        total_roots = sum(r.duration for r in trace.roots)
        assert total_self == pytest.approx(total_roots, rel=0.05)

    def test_sorted_by_wall_self_descending(self, tmp_path):
        stats = self_time_by_name(_solve_trace(tmp_path))
        walls = [s.wall_self for s in stats]
        assert walls == sorted(walls, reverse=True)


class TestFlamegraph:
    def test_collapsed_stack_format(self, nested_trace):
        lines = flamegraph_lines(nested_trace)
        parsed = {}
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            parsed[stack] = int(value)
        assert parsed["root"] == 1_000_000  # 1s self in µs
        assert parsed["root;a"] == 2_000_000
        assert parsed["root;a;leaf"] == 5_000_000
        assert parsed["root;b"] == 2_000_000

    def test_values_are_positive_integers(self, tmp_path):
        for line in flamegraph_lines(_solve_trace(tmp_path)):
            stack, value = line.rsplit(" ", 1)
            assert int(value) > 0
            assert stack


class TestDiff:
    def test_top_deltas_named(self, nested_trace):
        slower = Trace(path="after", spans=(
            _span(1, None, "root", 0.0, 14.0, 0),
            _span(2, 1, "a", 0.5, 7.0, 1),
            _span(3, 2, "leaf", 1.0, 9.0, 2),  # leaf regressed by 4s...
            _span(4, 1, "b", 8.0, 2.0, 1),
        ))
        rows = diff_traces(nested_trace, slower)
        assert rows[0]["name"] == "leaf"  # ...and is named first
        assert rows[0]["delta"] == pytest.approx(4.0)

    def test_acceptance_top3_between_real_runs(self, tmp_path):
        before = _solve_trace(tmp_path, seed=11)
        after = _solve_trace(tmp_path, seed=13)
        rows = diff_traces(before, after)
        assert len(rows) >= 3
        top3 = [r["name"] for r in rows[:3]]
        assert len(set(top3)) == 3  # three distinct span names
        deltas = [abs(r["delta"]) for r in rows]
        assert deltas == sorted(deltas, reverse=True)

    def test_names_unique_to_one_side(self, nested_trace):
        other = Trace(path="after", spans=(
            _span(1, None, "root", 0.0, 3.0, 0),
            _span(2, 1, "new_phase", 0.5, 3.0, 1),
        ))
        rows = {r["name"]: r for r in diff_traces(nested_trace, other)}
        assert rows["new_phase"]["count_before"] == 0
        assert rows["new_phase"]["count_after"] == 1
        assert rows["leaf"]["wall_self_after"] == 0.0


class TestFormatters:
    def test_report_mentions_top_names(self, nested_trace):
        text = format_report(nested_trace)
        assert "root" in text and "leaf" in text
        assert "spans: 4" in text

    def test_report_flags_skipped_lines(self):
        trace = Trace(path="x", spans=(), skipped_lines=2)
        assert "skipped_lines: 2" in format_report(trace)

    def test_critical_path_renders_total(self, nested_trace):
        text = format_critical_path(critical_path(nested_trace))
        assert "= path total" in text
        assert "root" in text

    def test_diff_renders_rows(self, nested_trace):
        text = format_diff(diff_traces(nested_trace, nested_trace))
        assert "delta" in text
