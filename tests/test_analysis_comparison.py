"""Tests for repro.analysis.comparison."""

import numpy as np
import pytest

from repro.analysis.comparison import compare_planners


def make_factory(offset=0.0, noise=1.0):
    """Games are just scalar baselines; scorers add offsets + noise."""

    def factory(rng):
        return float(rng.normal(0.0, 5.0))

    def score_high(context, rng):
        return context + offset + float(rng.normal(0.0, noise))

    def score_low(context, rng):
        return context + float(rng.normal(0.0, noise))

    return factory, score_high, score_low


class TestComparePlanners:
    def test_detects_clear_difference(self):
        factory, hi, lo = make_factory(offset=3.0, noise=0.2)
        result = compare_planners(factory, hi, lo, num_games=15, seed=0)
        assert result.mean_difference == pytest.approx(3.0, abs=0.4)
        assert result.significant
        assert result.ci_low > 0

    def test_no_difference_not_significant(self):
        factory, _, lo = make_factory(noise=1.0)
        result = compare_planners(factory, lo, lo, num_games=15, seed=1)
        assert abs(result.mean_difference) < 1.5
        # With identical scorers fed different streams, any difference is
        # pure noise — p should rarely be tiny; accept the 5% false-positive
        # chance by asserting the CI straddles something near zero.
        assert result.ci_low < result.mean_difference < result.ci_high

    def test_identical_scorers_same_stream_degenerate(self):
        """Deterministic identical scorers give exactly zero differences;
        the t-test degenerates and must be handled."""
        factory = lambda rng: float(rng.normal())
        score = lambda context, rng: context * 2.0
        result = compare_planners(factory, score, score, num_games=5, seed=2)
        np.testing.assert_allclose(result.differences, 0.0)
        assert result.p_value == 1.0
        assert not result.significant

    def test_pairing_removes_game_variance(self):
        """With huge game variance but a constant planner gap, pairing
        must still resolve the gap."""
        def factory(rng):
            return float(rng.normal(0.0, 100.0))

        result = compare_planners(
            factory,
            lambda c, rng: c + 0.5,
            lambda c, rng: c,
            num_games=10,
            seed=3,
        )
        assert result.mean_difference == pytest.approx(0.5, abs=1e-9)
        assert result.significant

    def test_summary_format(self):
        factory, hi, lo = make_factory(offset=1.0, noise=0.1)
        result = compare_planners(factory, hi, lo, num_games=5, seed=4)
        text = result.summary()
        assert "mean diff" in text and "p =" in text

    def test_validation(self):
        factory, hi, lo = make_factory()
        with pytest.raises(ValueError, match="num_games"):
            compare_planners(factory, hi, lo, num_games=1)
        with pytest.raises(ValueError, match="confidence"):
            compare_planners(factory, hi, lo, num_games=3, confidence=1.2)

    def test_real_planners_cubis_vs_midpoint(self):
        """End-to-end: CUBIS's worst case significantly beats midpoint's
        on random interval games."""
        from repro.baselines.midpoint import solve_midpoint
        from repro.core.cubis import solve_cubis
        from repro.experiments.quality import default_uncertainty
        from repro.game.generator import random_interval_game

        def factory(rng):
            game = random_interval_game(5, payoff_halfwidth=0.5, seed=rng)
            return game, default_uncertainty(game.payoffs)

        def cubis_score(context, rng):
            game, u = context
            return solve_cubis(game, u, num_segments=8, epsilon=0.05).worst_case_value

        def midpoint_score(context, rng):
            game, u = context
            return solve_midpoint(game, u, num_segments=8, epsilon=0.05).worst_case_value

        result = compare_planners(
            factory, cubis_score, midpoint_score, num_games=6, seed=5
        )
        assert result.mean_difference > 0
        assert result.significant
