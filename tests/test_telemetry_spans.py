"""Tests for repro.telemetry tracing: spans, nesting, events, adoption."""

import pickle

import pytest

from repro import telemetry
from repro.telemetry import NULL_SPAN, SpanRecord, Telemetry, Tracer


class TestSpanNesting:
    def test_single_span_is_root(self):
        tr = Tracer()
        with tr.span("root"):
            pass
        (rec,) = tr.spans
        assert rec.name == "root"
        assert rec.parent_id is None
        assert rec.depth == 0
        assert rec.status == "ok"
        assert rec.duration >= 0.0

    def test_children_link_to_parent(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
            with tr.span("inner"):
                pass
        outer = next(r for r in tr.spans if r.name == "outer")
        inners = [r for r in tr.spans if r.name == "inner"]
        assert len(inners) == 2
        assert all(r.parent_id == outer.span_id for r in inners)
        assert all(r.depth == 1 for r in inners)

    def test_ids_in_start_order(self):
        # Children *complete* before parents, but ids are assigned at
        # start: sorting by id (the ``spans`` property) recovers
        # timestamp order.
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        names = [r.name for r in tr.spans]
        assert names == ["a", "b"]
        assert [r.span_id for r in tr.spans] == [1, 2]

    def test_siblings_after_nested(self):
        tr = Tracer()
        with tr.span("root"):
            with tr.span("first"):
                with tr.span("deep"):
                    pass
            with tr.span("second"):
                pass
        names = [r.name for r in tr.spans]
        assert names == ["root", "first", "deep", "second"]
        second = tr.spans[3]
        root = tr.spans[0]
        assert second.parent_id == root.span_id
        assert second.depth == 1

    def test_active_span_id(self):
        tr = Tracer()
        assert tr.active_span_id is None
        with tr.span("outer"):
            outer_id = tr.active_span_id
            with tr.span("inner"):
                assert tr.active_span_id != outer_id
            assert tr.active_span_id == outer_id
        assert tr.active_span_id is None


class TestSpanAttributes:
    def test_creation_and_set(self):
        tr = Tracer()
        with tr.span("step", c=0.5) as sp:
            sp.set(feasible=True, extra=3)
        (rec,) = tr.spans
        assert rec.attributes == {"c": 0.5, "feasible": True, "extra": 3}

    def test_set_chains(self):
        tr = Tracer()
        with tr.span("s") as sp:
            assert sp.set(a=1) is sp


class TestSpanErrors:
    def test_exception_marks_error_and_propagates(self):
        tr = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tr.span("bad"):
                raise ValueError("boom")
        (rec,) = tr.spans
        assert rec.status == "error"
        assert rec.error == "ValueError: boom"

    def test_outer_records_even_when_inner_raises(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise RuntimeError("x")
        by_name = {r.name: r for r in tr.spans}
        assert by_name["inner"].status == "error"
        assert by_name["outer"].status == "error"
        assert by_name["inner"].parent_id == by_name["outer"].span_id


class TestEvents:
    def test_event_is_instant_span(self):
        tr = Tracer()
        with tr.span("root"):
            tr.event("ping", n=1)
        root, ping = tr.spans
        assert ping.name == "ping"
        assert ping.duration == 0.0
        assert ping.parent_id == root.span_id
        assert ping.attributes == {"n": 1}

    def test_event_outside_span_is_root(self):
        tr = Tracer()
        tr.event("lonely")
        (rec,) = tr.spans
        assert rec.parent_id is None and rec.depth == 0


class TestNullSpan:
    def test_null_span_is_inert(self):
        with NULL_SPAN as sp:
            assert sp is NULL_SPAN
            assert sp.set(anything=1) is sp

    def test_null_span_does_not_swallow(self):
        with pytest.raises(KeyError):
            with NULL_SPAN:
                raise KeyError("through")

    def test_disabled_telemetry_returns_null_span(self):
        tele = Telemetry(enabled=False)
        assert tele.span("x") is NULL_SPAN
        tele.event("y")
        assert tele.spans == ()


class TestContextActivation:
    def test_use_scopes_the_context(self):
        tele = Telemetry()
        assert telemetry.current() is telemetry.DISABLED
        with telemetry.use(tele):
            assert telemetry.current() is tele
            with telemetry.span("inside"):
                pass
        assert telemetry.current() is telemetry.DISABLED
        assert [r.name for r in tele.spans] == ["inside"]

    def test_module_span_without_context_is_noop(self):
        assert telemetry.span("nothing") is NULL_SPAN

    def test_disabled_metrics_stay_live(self):
        # The DISABLED fallback drops spans but still counts: result
        # fields are derived from counter deltas even when not tracing.
        c = telemetry.counter("test_disabled_counter_total")
        before = c.value
        c.inc()
        assert telemetry.counter("test_disabled_counter_total").value == before + 1

    def test_nested_use_restores_outer(self):
        outer, inner = Telemetry(), Telemetry()
        with telemetry.use(outer):
            with telemetry.use(inner):
                assert telemetry.current() is inner
            assert telemetry.current() is outer


class TestAdopt:
    def test_adopt_remaps_and_reparents(self):
        worker = Tracer()
        with worker.span("trial"):
            with worker.span("solve"):
                pass
        parent = Tracer()
        with parent.span("grid"):
            parent.adopt(worker.spans)
        by_name = {r.name: r for r in parent.spans}
        grid, trial, solve = by_name["grid"], by_name["trial"], by_name["solve"]
        assert trial.parent_id == grid.span_id
        assert solve.parent_id == trial.span_id
        assert (trial.depth, solve.depth) == (1, 2)
        # Remapped ids are unique and past the parent's own.
        ids = [r.span_id for r in parent.spans]
        assert len(set(ids)) == len(ids)

    def test_adopt_outside_span_makes_roots(self):
        worker = Tracer()
        with worker.span("trial"):
            pass
        parent = Tracer()
        parent.adopt(worker.spans)
        (rec,) = parent.spans
        assert rec.parent_id is None and rec.depth == 0

    def test_adopt_order_is_deterministic(self):
        def make_worker(tag):
            tr = Tracer()
            with tr.span("trial", tag=tag):
                pass
            return tr.spans

        a, b = make_worker("a"), make_worker("b")
        p1, p2 = Tracer(), Tracer()
        for p in (p1, p2):
            with p.span("grid"):
                p.adopt(a)
                p.adopt(b)
        skeleton = lambda tr: [
            (r.span_id, r.parent_id, r.name, r.depth, dict(r.attributes))
            for r in tr.spans
        ]
        assert skeleton(p1) == skeleton(p2)

    def test_adopt_empty_is_noop(self):
        tr = Tracer()
        tr.adopt(())
        assert len(tr) == 0


class TestSerialisation:
    def test_record_is_picklable(self):
        tr = Tracer()
        with tr.span("s", k=1):
            pass
        (rec,) = tr.spans
        assert pickle.loads(pickle.dumps(rec)) == rec

    def test_to_dict_shape(self):
        rec = SpanRecord(span_id=3, parent_id=1, name="n", start=0.5,
                         duration=0.25, depth=1, attributes={"a": 1})
        d = rec.to_dict()
        assert d["type"] == "span"
        assert "error" not in d  # only present when status == "error"
        assert d["attributes"] == {"a": 1}

    def test_to_dict_includes_error(self):
        rec = SpanRecord(span_id=1, parent_id=None, name="n", start=0.0,
                         duration=0.0, depth=0, status="error",
                         error="ValueError: x")
        assert rec.to_dict()["error"] == "ValueError: x"


class TestResourceAttribution:
    """Spans carry CPU time alongside wall time, and — when tracemalloc
    is tracing — the peak allocation delta observed inside the span."""

    def test_cpu_time_recorded(self):
        tr = Tracer()
        with tr.span("busy"):
            sum(i * i for i in range(200_000))
        (rec,) = tr.spans
        assert rec.cpu_time > 0
        # CPU can't exceed wall by more than scheduler jitter on one thread.
        assert rec.cpu_time <= rec.duration * 1.5 + 0.01

    def test_mem_peak_none_without_tracemalloc(self):
        import tracemalloc
        assert not tracemalloc.is_tracing()
        tr = Tracer()
        with tr.span("s"):
            pass
        assert tr.spans[0].mem_peak is None
        assert "mem_peak" not in tr.spans[0].to_dict()

    def test_mem_peak_with_tracemalloc(self):
        import tracemalloc
        tracemalloc.start()
        try:
            tr = Tracer()
            with tr.span("alloc"):
                blob = [bytes(1024) for _ in range(512)]  # ~512 KiB
                del blob
            (rec,) = tr.spans
            assert rec.mem_peak is not None
            assert rec.mem_peak >= 256 * 1024
        finally:
            tracemalloc.stop()

    def test_round_trip_preserves_resources(self):
        rec = SpanRecord(span_id=1, parent_id=None, name="n", start=0.0,
                         duration=0.5, depth=0, cpu_time=0.25,
                         mem_peak=4096)
        again = SpanRecord.from_dict(rec.to_dict())
        assert again.cpu_time == 0.25
        assert again.mem_peak == 4096

    def test_from_dict_defaults_for_old_traces(self):
        # Traces written before these fields existed must still load.
        old = {"type": "span", "span_id": 1, "parent_id": None, "name": "n",
               "start": 0.0, "duration": 0.5, "depth": 0}
        rec = SpanRecord.from_dict(old)
        assert rec.cpu_time == 0.0
        assert rec.mem_peak is None

    def test_adopt_preserves_resources(self):
        worker = Tracer()
        with worker.span("w"):
            sum(range(50_000))
        main = Tracer()
        main.adopt(worker.spans)
        assert main.spans[0].cpu_time == worker.spans[0].cpu_time
        assert main.spans[0].mem_peak == worker.spans[0].mem_peak
