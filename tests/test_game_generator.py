"""Unit tests for repro.game.generator."""

import numpy as np
import pytest

from repro.game.generator import (
    airport_game,
    random_game,
    random_interval_game,
    table1_game,
    wildlife_game,
)


class TestRandomGame:
    def test_shapes_and_defaults(self):
        g = random_game(10, seed=0)
        assert g.num_targets == 10
        assert g.num_resources == 2  # T // 5

    def test_deterministic(self):
        a = random_game(6, seed=42)
        b = random_game(6, seed=42)
        np.testing.assert_array_equal(a.payoffs.attacker_reward, b.payoffs.attacker_reward)

    def test_different_seeds_differ(self):
        a = random_game(6, seed=1)
        b = random_game(6, seed=2)
        assert not np.allclose(a.payoffs.attacker_reward, b.payoffs.attacker_reward)

    def test_payoffs_in_range(self):
        g = random_game(50, seed=0, reward_range=(2.0, 4.0), penalty_range=(-3.0, -2.0))
        assert np.all(g.payoffs.attacker_reward >= 2.0)
        assert np.all(g.payoffs.attacker_reward <= 4.0)
        assert np.all(g.payoffs.attacker_penalty >= -3.0)
        assert np.all(g.payoffs.attacker_penalty <= -2.0)

    def test_zero_sum_flag(self):
        g = random_game(5, seed=0, zero_sum=True)
        np.testing.assert_allclose(g.payoffs.defender_reward, -g.payoffs.attacker_penalty)
        np.testing.assert_allclose(g.payoffs.defender_penalty, -g.payoffs.attacker_reward)

    def test_full_correlation_is_zero_sum(self):
        g = random_game(5, seed=0, correlation=1.0)
        np.testing.assert_allclose(g.payoffs.defender_reward, -g.payoffs.attacker_penalty)

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError, match="non-degenerate"):
            random_game(5, reward_range=(3.0, 3.0))
        with pytest.raises(ValueError, match="strictly above"):
            random_game(5, reward_range=(-1.0, 1.0), penalty_range=(-2.0, 0.5))

    def test_bad_correlation_rejected(self):
        with pytest.raises(ValueError, match="correlation"):
            random_game(5, correlation=2.0)

    def test_explicit_resources(self):
        g = random_game(8, num_resources=3, seed=0)
        assert g.num_resources == 3


class TestRandomIntervalGame:
    def test_default_halfwidth(self):
        g = random_interval_game(10, seed=0)
        width = g.payoffs.attacker_reward_hi - g.payoffs.attacker_reward_lo
        assert np.all(width > 0)
        assert np.all(width <= 2.0 + 1e-12)

    def test_zero_halfwidth_degenerates(self):
        g = random_interval_game(5, payoff_halfwidth=0.0, seed=0)
        np.testing.assert_allclose(
            g.payoffs.attacker_reward_lo, g.payoffs.attacker_reward_hi
        )

    def test_negative_halfwidth_rejected(self):
        with pytest.raises(ValueError, match="payoff_halfwidth"):
            random_interval_game(5, payoff_halfwidth=-1.0)

    def test_reward_stays_above_penalty(self):
        # Huge half-width must be clipped to keep intervals separated.
        g = random_interval_game(30, payoff_halfwidth=50.0, seed=3)
        assert np.all(g.payoffs.attacker_reward_lo > g.payoffs.attacker_penalty_hi)

    def test_deterministic(self):
        a = random_interval_game(6, seed=9)
        b = random_interval_game(6, seed=9)
        np.testing.assert_array_equal(
            a.payoffs.attacker_reward_lo, b.payoffs.attacker_reward_lo
        )


class TestTable1Game:
    def test_matches_paper_table(self):
        g = table1_game()
        np.testing.assert_array_equal(g.payoffs.attacker_reward_lo, [1.0, 5.0])
        np.testing.assert_array_equal(g.payoffs.attacker_reward_hi, [5.0, 9.0])
        np.testing.assert_array_equal(g.payoffs.attacker_penalty_lo, [-7.0, -9.0])
        np.testing.assert_array_equal(g.payoffs.attacker_penalty_hi, [-3.0, -5.0])
        assert g.num_resources == 1

    def test_calibrated_defender_payoffs(self):
        g = table1_game()
        np.testing.assert_array_equal(g.payoffs.defender_reward, [5.0, 7.0])
        np.testing.assert_array_equal(g.payoffs.defender_penalty, [-6.0, -10.0])


class TestScenarioGames:
    def test_wildlife_density_ordering(self):
        g = wildlife_game(num_sites=10, seed=0)
        mid = g.payoffs.attacker_reward_mid
        # Densities decay overall: the first site outvalues the last.
        assert mid[0] > mid[-1]

    def test_wildlife_resources(self):
        g = wildlife_game(num_sites=12, num_patrols=3, seed=0)
        assert g.num_resources == 3

    def test_wildlife_min_sites(self):
        with pytest.raises(ValueError, match="num_sites"):
            wildlife_game(num_sites=1)

    def test_airport_structure(self):
        g = airport_game(num_checkpoints=8, num_teams=2, seed=0)
        assert g.num_targets == 8
        assert g.num_resources == 2
        # Defender penalties are skewed below the negated attacker reward.
        assert np.all(g.payoffs.defender_penalty < 0)

    def test_airport_min_checkpoints(self):
        with pytest.raises(ValueError, match="num_checkpoints"):
            airport_game(num_checkpoints=1)

    def test_scenarios_deterministic(self):
        a = wildlife_game(seed=5)
        b = wildlife_game(seed=5)
        np.testing.assert_array_equal(
            a.payoffs.attacker_reward_lo, b.payoffs.attacker_reward_lo
        )
