"""Tests for repro.store.hashing — the canonical content hash.

The hash must be a pure function of *content*: dict insertion order,
numpy wrappers, and list/tuple distinctions must not matter; genuine
type and value differences (``1`` vs ``1.0`` vs ``True`` vs ``"1"``,
``-0.0`` vs ``0.0``) must.
"""

import numpy as np
import pytest

from repro.game.generator import random_interval_game
from repro.store.hashing import (
    canonical_text,
    hash_config,
    hash_game,
    hash_trial_callable,
    stable_hash,
)


class TestDictOrdering:
    def test_key_order_is_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_nested_key_order_is_irrelevant(self):
        left = {"outer": {"x": 1, "y": [1, {"p": 2, "q": 3}]}}
        right = {"outer": {"y": [1, {"q": 3, "p": 2}], "x": 1}}
        assert stable_hash(left) == stable_hash(right)

    def test_different_values_differ(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_different_keys_differ(self):
        assert stable_hash({"a": 1}) != stable_hash({"b": 1})

    def test_non_string_keys_rejected(self):
        with pytest.raises(TypeError, match="string mapping keys"):
            stable_hash({1: "a"})


class TestNumpyNormalisation:
    def test_numpy_int_equals_python_int(self):
        assert stable_hash(np.int64(2)) == stable_hash(2)
        assert stable_hash(np.int32(2)) == stable_hash(2)

    def test_numpy_float_equals_python_float(self):
        assert stable_hash(np.float64(1.5)) == stable_hash(1.5)
        assert stable_hash(np.float32(0.5)) == stable_hash(0.5)

    def test_numpy_bool_equals_python_bool(self):
        assert stable_hash(np.bool_(True)) == stable_hash(True)
        assert stable_hash(np.bool_(False)) == stable_hash(False)

    def test_array_equals_nested_list(self):
        arr = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert stable_hash(arr) == stable_hash([[1.0, 2.0], [3.0, 4.0]])

    def test_int_array_equals_int_list(self):
        assert stable_hash(np.array([1, 2, 3])) == stable_hash([1, 2, 3])

    def test_config_with_numpy_scalars(self):
        """The classic sweep pitfall: a grid built from np.arange carries
        np.int64 params; its hash must match the plain-Python grid."""
        assert hash_config({"size": np.int64(5), "eps": np.float64(0.1)}) == \
            hash_config({"size": 5, "eps": 0.1})


class TestTypeTags:
    """Values of different types never collide, even when a naive
    str() serialisation would render them identically."""

    def test_int_float_bool_str_all_distinct(self):
        hashes = {stable_hash(1), stable_hash(1.0), stable_hash(True),
                  stable_hash("1")}
        assert len(hashes) == 4

    def test_zero_variants_distinct(self):
        assert len({stable_hash(0), stable_hash(0.0), stable_hash(False),
                    stable_hash("0")}) == 4

    def test_none_vs_string_none(self):
        assert stable_hash(None) != stable_hash("None")

    def test_empty_containers_distinct(self):
        assert stable_hash([]) != stable_hash({})
        assert stable_hash([]) != stable_hash("")

    def test_string_that_looks_like_a_tag(self):
        """A string containing canonical-form syntax must not collide
        with the structure it mimics (strings are JSON-escaped)."""
        assert stable_hash("i:1") != stable_hash(1)
        assert stable_hash(["a", "b"]) != stable_hash('["a","b"]')

    def test_bytes_vs_str(self):
        assert stable_hash(b"abc") != stable_hash("abc")


class TestFloatStability:
    def test_negative_zero_differs_from_zero(self):
        assert stable_hash(-0.0) != stable_hash(0.0)

    def test_nan_is_stable(self):
        assert stable_hash(float("nan")) == stable_hash(float("nan"))

    def test_inf_variants(self):
        assert stable_hash(float("inf")) != stable_hash(float("-inf"))

    def test_tiny_difference_detected(self):
        assert stable_hash(0.1) != stable_hash(0.1 + 1e-16)

    def test_float_hex_in_canonical_text(self):
        assert canonical_text(1.5) == f"f:{(1.5).hex()}"


class TestSequences:
    def test_list_and_tuple_interchangeable(self):
        """A config that round-trips through JSON turns tuples into
        lists; its hash must survive the trip."""
        assert stable_hash((1, 2, 3)) == stable_hash([1, 2, 3])
        assert stable_hash({"k": (1, 2)}) == stable_hash({"k": [1, 2]})

    def test_nesting_is_not_flattened(self):
        assert stable_hash([[1], [2]]) != stable_hash([1, 2])
        assert stable_hash([[1, 2]]) != stable_hash([[1], [2]])

    def test_order_matters(self):
        assert stable_hash([1, 2]) != stable_hash([2, 1])


class TestStableHashApi:
    def test_full_digest_is_64_hex(self):
        digest = stable_hash({"a": 1})
        assert len(digest) == 64
        int(digest, 16)  # valid hex

    def test_length_truncates(self):
        full = stable_hash({"a": 1})
        assert stable_hash({"a": 1}, length=12) == full[:12]

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot canonically hash"):
            stable_hash(object())

    def test_hash_config_requires_mapping(self):
        with pytest.raises(TypeError, match="mapping"):
            hash_config([("a", 1)])


class TestDomainHashes:
    def test_hash_game_roundtrips_through_json(self):
        """A game loaded from its JSON form must hash identically."""
        from repro.analysis.io import game_from_dict, game_to_dict

        game = random_interval_game(4, seed=0)
        reloaded = game_from_dict(game_to_dict(game))
        assert hash_game(game) == hash_game(reloaded)

    def test_hash_game_distinguishes_games(self):
        assert hash_game(random_interval_game(4, seed=0)) != \
            hash_game(random_interval_game(4, seed=1))

    def test_hash_trial_callable_by_name(self):
        from repro.experiments.smoke import _trial

        assert hash_trial_callable(_trial) == hash_trial_callable(_trial)
        assert hash_trial_callable(_trial) != hash_trial_callable(
            random_interval_game
        )
