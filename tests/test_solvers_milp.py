"""Unit tests for repro.solvers.milp_backend (problem container + HiGHS)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers.milp_backend import MILPProblem, MILPResult, solve_milp


def knapsack_problem():
    """max 5a + 4b + 3c s.t. 2a + 3b + c <= 4, binary -> min form."""
    return MILPProblem(
        c=np.array([-5.0, -4.0, -3.0]),
        A_ub=np.array([[2.0, 3.0, 1.0]]),
        b_ub=np.array([4.0]),
        lb=np.zeros(3),
        ub=np.ones(3),
        integrality=np.ones(3, dtype=int),
    )


class TestMILPProblem:
    def test_defaults(self):
        p = MILPProblem(c=[1.0, 2.0])
        np.testing.assert_array_equal(p.lb, [0.0, 0.0])
        assert np.all(np.isinf(p.ub))
        assert p.num_integer == 0
        assert p.num_variables == 2

    def test_bound_shape_validation(self):
        with pytest.raises(ValueError, match="lb"):
            MILPProblem(c=[1.0, 2.0], lb=[0.0])

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ValueError, match="lb <= ub"):
            MILPProblem(c=[1.0], lb=[2.0], ub=[1.0])

    def test_matrix_without_rhs_rejected(self):
        with pytest.raises(ValueError, match="together"):
            MILPProblem(c=[1.0], A_ub=np.ones((1, 1)))

    def test_wrong_column_count_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            MILPProblem(c=[1.0], A_ub=np.ones((1, 2)), b_ub=[1.0])

    def test_num_integer(self):
        p = knapsack_problem()
        assert p.num_integer == 3


class TestHighsBackend:
    def test_knapsack_optimum(self):
        res = solve_milp(knapsack_problem())
        assert res.optimal
        # Best is a + c = 8 with weight 3 <= 4.
        assert res.objective == pytest.approx(-8.0)
        np.testing.assert_allclose(res.x, [1.0, 0.0, 1.0], atol=1e-6)

    def test_continuous_problem(self):
        p = MILPProblem(c=np.array([-1.0]), ub=np.array([2.5]))
        res = solve_milp(p)
        assert res.optimal
        assert res.objective == pytest.approx(-2.5)

    def test_equality_constraints(self):
        p = MILPProblem(
            c=np.array([1.0, 1.0]),
            A_eq=np.array([[1.0, 2.0]]),
            b_eq=np.array([2.0]),
            ub=np.array([5.0, 5.0]),
            integrality=np.array([1, 1]),
        )
        res = solve_milp(p)
        assert res.optimal
        np.testing.assert_allclose(res.x, [0.0, 1.0], atol=1e-6)

    def test_infeasible(self):
        p = MILPProblem(
            c=np.array([1.0]),
            A_ub=np.array([[1.0]]),
            b_ub=np.array([-1.0]),
        )
        res = solve_milp(p)
        assert res.status == "infeasible"
        assert not res.optimal

    def test_sparse_matrix_accepted(self):
        p = MILPProblem(
            c=np.array([-1.0, -1.0]),
            A_ub=sp.csr_matrix(np.array([[1.0, 1.0]])),
            b_ub=np.array([1.0]),
            ub=np.ones(2),
            integrality=np.ones(2, dtype=int),
        )
        res = solve_milp(p)
        assert res.optimal
        assert res.objective == pytest.approx(-1.0)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            solve_milp(knapsack_problem(), backend="gurobi")


class TestMILPResult:
    def test_optimal_property(self):
        assert MILPResult("optimal", np.zeros(1), 0.0).optimal
        assert not MILPResult("infeasible", None, None).optimal
