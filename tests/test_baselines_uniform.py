"""Tests for the uniform baseline."""

import numpy as np

from repro.baselines.uniform import solve_uniform
from repro.game.generator import random_game, random_interval_game


class TestSolveUniform:
    def test_point_game(self):
        game = random_game(8, num_resources=2, seed=0)
        res = solve_uniform(game)
        np.testing.assert_allclose(res.strategy, np.full(8, 0.25))

    def test_interval_game(self):
        game = random_interval_game(5, num_resources=2, seed=0)
        res = solve_uniform(game)
        np.testing.assert_allclose(res.strategy, np.full(5, 0.4))

    def test_feasible(self):
        game = random_game(7, num_resources=3, seed=1)
        assert game.strategy_space.contains(solve_uniform(game).strategy)
