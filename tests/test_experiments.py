"""Smoke + semantics tests for the experiment drivers (tiny parameters).

Each experiment must run end-to-end, produce the schema its formatter
expects, and exhibit the qualitative shape claimed in DESIGN.md §2.
"""

import numpy as np
import pytest

from repro.experiments import (
    PAPER_REFERENCE,
    format_ablation,
    format_intervals,
    format_quality,
    format_runtime,
    format_table1,
    run_ablation_epsilon,
    run_ablation_k,
    run_intervals,
    run_quality,
    run_runtime,
    run_table1,
)


class TestTable1:
    """Table I pinned through the golden-fixture registry: the fixture
    carries the instance definition, the expected numbers, and their
    tolerances; this class only supplies the measurement and the paper
    cross-reference."""

    @pytest.fixture(scope="class")
    def fixture(self):
        from repro.verify import load_all_fixtures

        return next(f for f in load_all_fixtures() if f.name == "table1")

    @pytest.fixture(scope="class")
    def result(self, fixture):
        return run_table1(
            num_segments=fixture.solve["num_segments"],
            epsilon=fixture.solve["epsilon"],
        )

    def test_golden_fixture_pins_result(self, fixture, result):
        from repro.verify import check_fixture

        report = check_fixture(fixture, measured={
            "robust_strategy": list(result.robust_strategy),
            "robust_worst_case": result.robust_worst_case,
            "midpoint_strategy": list(result.midpoint_strategy),
            "midpoint_worst_case": result.midpoint_worst_case,
        })
        assert report.passed, report.summary()

    def test_golden_values_close_to_paper(self, fixture):
        """The pinned numbers themselves track the paper's Table I (the
        looser tolerances here are the documented reproduction gap; the
        fixture's own atol only guards against solver drift)."""
        expected = fixture.expected
        np.testing.assert_allclose(
            expected["robust_strategy"]["value"],
            PAPER_REFERENCE.robust_strategy, atol=0.02,
        )
        assert expected["robust_worst_case"]["value"] == pytest.approx(
            PAPER_REFERENCE.robust_worst_case, abs=0.05
        )
        np.testing.assert_allclose(
            expected["midpoint_strategy"]["value"],
            PAPER_REFERENCE.midpoint_strategy, atol=0.04,
        )
        assert expected["midpoint_worst_case"]["value"] == pytest.approx(
            PAPER_REFERENCE.midpoint_worst_case, abs=0.3
        )

    def test_robust_beats_midpoint(self, result):
        assert result.robust_worst_case > result.midpoint_worst_case + 0.5

    def test_formatter(self, result):
        out = format_table1(result)
        assert "Table I" in out and "robust" in out and "midpoint" in out


class TestQuality:
    @pytest.fixture(scope="class")
    def table(self):
        return run_quality(
            target_counts=(4, 6), num_trials=2, num_segments=8, epsilon=0.05,
            num_types=3, seed=7,
        )

    def test_record_count(self, table):
        assert len(table) == 2 * 2 * 5  # sizes * trials * algorithms

    def test_cubis_tops_midpoint_and_uniform(self, table):
        for size in (4, 6):
            sub = table.where(num_targets=size)
            means = {
                name: np.mean(sub.where(algorithm=name).column("worst_case"))
                for name in ("cubis", "midpoint", "uniform")
            }
            assert means["cubis"] >= means["midpoint"] - 0.05
            assert means["cubis"] >= means["uniform"] - 0.05

    def test_formatter(self, table):
        out = format_quality(table)
        assert "F1" in out and "cubis" in out


class TestRuntime:
    @pytest.fixture(scope="class")
    def table(self):
        return run_runtime(
            target_counts=(4,), num_trials=1, num_segments=6, epsilon=0.05,
            num_starts=3, seed=7,
        )

    def test_records(self, table):
        assert len(table) == 2
        assert set(table.column("algorithm").tolist()) == {"cubis", "multistart"}

    def test_times_positive(self, table):
        assert np.all(table.column("seconds") > 0)

    def test_formatter(self, table):
        out = format_runtime(table)
        assert "F2a" in out and "F2b" in out

    def test_game_and_solver_streams_decoupled(self, monkeypatch):
        """Regression: the trial used to feed one shared generator into
        both the game draw and the multistart solver, correlating the
        solver's starting points with the game's payoffs."""
        from repro.experiments import runtime as runtime_mod

        captured = {}
        real_game, real_exact = runtime_mod.random_interval_game, runtime_mod.solve_exact

        def fake_game(num_targets, seed=None):
            captured["game"] = seed
            return real_game(num_targets, seed=1)

        def fake_exact(game, uncertainty, num_starts, seed):
            captured["solver"] = seed
            return real_exact(game, uncertainty, num_starts=1, seed=0)

        monkeypatch.setattr(runtime_mod, "random_interval_game", fake_game)
        monkeypatch.setattr(runtime_mod, "solve_exact", fake_exact)
        rng = np.random.default_rng(5)
        list(
            runtime_mod._trial(
                rng, 0, num_targets=4, num_segments=6, epsilon=0.1, num_starts=3
            )
        )
        assert captured["game"] is not captured["solver"]
        # Spawned children, not the shared parent stream.
        assert captured["game"] is not rng and captured["solver"] is not rng


class TestIntervals:
    @pytest.fixture(scope="class")
    def table(self):
        return run_intervals(
            scales=(0.0, 1.0), num_targets=4, num_trials=2, num_segments=8,
            epsilon=0.05, seed=7,
        )

    def test_records(self, table):
        assert len(table) == 2 * 2 * 2

    def test_gap_grows_with_uncertainty(self, table):
        """The robust-vs-midpoint worst-case gap widens as boxes widen."""
        def gap(scale):
            sub = table.where(scale=scale)
            c = np.mean(sub.where(algorithm="cubis").column("worst_case"))
            m = np.mean(sub.where(algorithm="midpoint").column("worst_case"))
            return c - m

        assert gap(1.0) >= gap(0.0) - 0.1

    def test_formatter(self, table):
        out = format_intervals(table)
        assert "F3" in out and "gap" in out


class TestAblation:
    @pytest.fixture(scope="class")
    def table_k(self):
        return run_ablation_k(
            segment_counts=(2, 12), num_targets=3, num_trials=2, seed=7
        )

    def test_gap_shrinks_with_k(self, table_k):
        means = table_k.group_mean("num_segments", "gap")
        assert means[12] <= means[2] + 0.02

    def test_measured_below_certified(self, table_k):
        for row in table_k.rows:
            assert row["gap"] <= row["certified"] + 1e-6

    def test_epsilon_sweep(self):
        table = run_ablation_epsilon(
            epsilons=(0.5, 0.01), num_targets=3, num_segments=12, num_trials=1, seed=7
        )
        means = table.group_mean("epsilon", "gap")
        assert means[0.01] <= means[0.5] + 0.02

    def test_formatter(self, table_k):
        out = format_ablation(table_k, "num_segments")
        assert "F4" in out and "certified" in out


class TestLandscape:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.experiments import run_landscape

        return run_landscape(
            num_targets=5, num_trials=1, num_segments=8, epsilon=0.05,
            num_types=3, seed=7,
        )

    def test_record_count(self, table):
        from repro.experiments.landscape import LANDSCAPE_ALGORITHMS

        assert len(table) == len(LANDSCAPE_ALGORITHMS)

    def test_cubis_tops_worst_case(self, table):
        worst = {row["algorithm"]: row["worst_case"] for row in table.rows}
        for name, value in worst.items():
            if name in ("cubis", "maximin"):
                continue
            assert worst["cubis"] >= value - 0.25, name

    def test_formatter(self, table):
        from repro.experiments import format_landscape

        out = format_landscape(table)
        assert "F5" in out and "cubis" in out and "sse" in out


class TestCompareBench:
    """The CI regression gate: counts may not grow, speedups may not
    shrink, wall-clock never enters the comparison."""

    @staticmethod
    def payload(**overrides):
        base = {
            "cold": {"oracle_calls": 80, "milp_solves": 80, "lp_solves": 0,
                     "wall_clock_seconds": 9.0},
            "warm": {"oracle_calls": 80, "milp_solves": 10, "lp_solves": 70,
                     "wall_clock_seconds": 0.7},
            "session": {"oracle_calls": 120, "milp_solves": 0, "lp_solves": 110,
                        "wall_clock_seconds": 1.0},
            "speedup": 13.0,
            "speedup_session": 9.0,
        }
        base.update(overrides)
        return base

    def test_identical_payload_passes(self):
        from repro.experiments.perf import compare_bench

        p = self.payload()
        assert compare_bench(p, p) == []

    def test_count_regression_detected(self):
        from repro.experiments.perf import compare_bench

        ref = self.payload()
        cur = self.payload(session={"oracle_calls": 120, "milp_solves": 50,
                                    "lp_solves": 110})
        problems = compare_bench(cur, ref, max_regression=1.25)
        assert len(problems) == 1
        assert "session.milp_solves" in problems[0]

    def test_speedup_regression_detected(self):
        from repro.experiments.perf import compare_bench

        problems = compare_bench(
            self.payload(speedup_session=2.0), self.payload(), max_regression=1.25
        )
        assert problems and "speedup_session" in problems[0]

    def test_counts_within_factor_pass(self):
        from repro.experiments.perf import compare_bench

        ref = self.payload()
        cur = self.payload(cold={"oracle_calls": 99, "milp_solves": 99,
                                 "lp_solves": 0})
        assert compare_bench(cur, ref, max_regression=1.25) == []

    def test_wall_clock_never_compared(self):
        from repro.experiments.perf import compare_bench

        slow = self.payload()
        slow["cold"] = dict(slow["cold"], wall_clock_seconds=900.0)
        assert compare_bench(slow, self.payload()) == []

    def test_absent_sections_and_keys_skipped(self):
        from repro.experiments.perf import compare_bench

        old_ref = {"cold": {"oracle_calls": 80}, "speedup": 13.0}
        assert compare_bench(self.payload(), old_ref) == []
        assert compare_bench(old_ref, self.payload()) == []

    def test_invalid_factor_rejected(self):
        from repro.experiments.perf import compare_bench

        with pytest.raises(ValueError, match="max_regression"):
            compare_bench(self.payload(), self.payload(), max_regression=0.8)
