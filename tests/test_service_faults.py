"""Fault injection against the service: structured 503s, the resilience
attempt trail, queue drainability, and redispatch-once semantics.

The "worker death" scenarios use the existing
:class:`repro.resilience.faults.FaultInjector` at failure rate 1.0 over
MILP-only ladders (no DP survivor), so every rung of every attempt
dies and the engine must surface a structured error instead of hanging
or poisoning the queue.  Redispatch semantics use scripted solvers for
exact call counts.
"""

import json
import threading
import time
from types import SimpleNamespace

import pytest

from repro.analysis.io import game_to_dict, uncertainty_to_dict
from repro.resilience.faults import FaultInjector, injected_policy
from repro.resilience.policy import ResiliencePolicy, Rung
from repro.service import ServiceClient, ServiceDaemon, SolveEngine
from tests import fixtures_games
from tests.test_service_coalescing import (
    GatedSolver,
    distinct_bodies,
    make_fake_result,
    small_body,
)


def doomed_policy_factory(seed: int = 1):
    """A policy factory whose ladder always dies (MILP-only rungs, all
    wrapped by an always-error injector) — but only for requests that
    asked for resilience, so ``resilience=False`` requests run clean
    and prove the queue survived."""
    injector = FaultInjector(1.0, modes=("error",), seed=seed)
    base = ResiliencePolicy(
        rungs=(Rung("milp", "highs"), Rung("milp", "bnb")), max_retries=0)
    doomed = injected_policy(injector, base)

    def factory(options):
        return doomed if options["resilience"] else None

    return factory


class FlakySolver:
    """Scripted solve_fn: the first ``fail_times`` calls raise, later
    calls succeed; optionally gated so a coalesced group can assemble
    before the first failure fires."""

    def __init__(self, fail_times: int, gated: bool = False) -> None:
        self.fail_times = fail_times
        self.calls = 0
        self.started = threading.Event()
        self.gate = threading.Event()
        if not gated:
            self.gate.set()
        self._lock = threading.Lock()

    def __call__(self, game, uncertainty, options, **_kwargs):
        with self._lock:
            self.calls += 1
            call = self.calls
        self.started.set()
        assert self.gate.wait(30.0)
        if call <= self.fail_times:
            raise RuntimeError(f"injected worker death #{call}")
        return make_fake_result()


class TestStructured503:
    def test_ladder_exhaustion_returns_503_with_attempt_trail(self):
        engine = SolveEngine(workers=1, queue_depth=4,
                             policy_factory=doomed_policy_factory())
        try:
            ticket = engine.submit(small_body())
            result = ticket.wait(60.0)
            assert result is not None and result.status == 503
            detail = json.loads(result.body)["error"]
            assert detail["type"] == "LadderExhaustedError"
            # The resilience attempt trail: both rungs tried, both died.
            attempts = detail["attempts"]
            assert len(attempts) >= 2
            assert {a["outcome"] for a in attempts} == {"error"}
            assert {a["rung"] for a in attempts} == {0, 1}
            assert all("injected" in a["message"] for a in attempts)
        finally:
            engine.close()

    def test_queue_stays_drainable_after_worker_death(self):
        engine = SolveEngine(workers=1, queue_depth=4,
                             policy_factory=doomed_policy_factory())
        try:
            dead = engine.submit(small_body())
            assert dead.wait(60.0).status == 503
            assert engine.inflight == 0
            # Same instance, resilience off -> the doomed factory steps
            # aside and the solve must succeed on the same queue/worker.
            survivor = engine.submit(small_body(resilience=False))
            result = survivor.wait(60.0)
            assert result is not None and result.status == 200
            assert engine.metric_value("repro_service_errors_total") == 1
            assert engine.metric_value("repro_service_solves_total") == 1
        finally:
            engine.close()

    def test_failures_are_never_cached(self):
        solver = FlakySolver(fail_times=1)
        engine = SolveEngine(workers=1, queue_depth=4, solve_fn=solver)
        try:
            first = engine.submit(small_body())
            assert first.wait(10.0).status == 503
            # Identical resubmission: no cache hit, a fresh solve runs
            # (and this time the script lets it succeed).
            second = engine.submit(small_body())
            assert not second.cached
            assert second.wait(10.0).status == 200
            assert engine.metric_value("repro_service_cache_hits_total") == 0
        finally:
            engine.close()

    def test_daemon_maps_worker_death_to_http_503(self):
        engine = SolveEngine(workers=1, queue_depth=4,
                             policy_factory=doomed_policy_factory())
        with ServiceDaemon(engine, port=0) as daemon:
            client = ServiceClient(daemon.url, timeout=120.0)
            body = small_body()
            status, _headers, payload = client.request(
                "POST", "/v1/solve", json.dumps(body).encode())
            assert status == 503
            detail = json.loads(payload)["error"]
            assert detail["type"] == "LadderExhaustedError"
            assert detail["attempts"], "503 must carry the attempt trail"
            # The daemon keeps serving after the failure.
            assert client.healthz()["status"] == "ok"


class TestRedispatch:
    def test_coalesced_group_redispatches_once_then_succeeds(self):
        solver = FlakySolver(fail_times=1, gated=True)
        engine = SolveEngine(workers=1, queue_depth=4, solve_fn=solver)
        try:
            leader = engine.submit(small_body())
            assert solver.started.wait(10.0)
            waiters = [engine.submit(small_body()) for _ in range(2)]
            assert all(w.coalesced for w in waiters)
            solver.gate.set()
            results = [t.wait(30.0) for t in [leader, *waiters]]
            # First execution died, the group was re-dispatched once,
            # the retry succeeded: everyone gets the same 200 bytes.
            assert solver.calls == 2
            assert [r.status for r in results] == [200, 200, 200]
            assert all(r.body is results[0].body for r in results)
            assert engine.metric_value("repro_service_redispatch_total") == 1
            assert engine.metric_value("repro_service_errors_total") == 0
        finally:
            solver.gate.set()
            engine.close()

    def test_redispatch_happens_at_most_once(self):
        solver = FlakySolver(fail_times=99, gated=True)  # never recovers
        engine = SolveEngine(workers=1, queue_depth=4, solve_fn=solver)
        try:
            leader = engine.submit(small_body())
            assert solver.started.wait(10.0)
            waiters = [engine.submit(small_body()) for _ in range(2)]
            solver.gate.set()
            results = [t.wait(30.0) for t in [leader, *waiters]]
            # Exactly two executions (original + one redispatch) — the
            # group is not retried forever, and nobody fails silently:
            # every waiter gets the structured 503.
            assert solver.calls == 2
            assert [r.status for r in results] == [503, 503, 503]
            assert all(r.body is results[0].body for r in results)
            detail = json.loads(results[0].body)["error"]
            assert "injected worker death" in detail["message"]
            assert engine.metric_value("repro_service_redispatch_total") == 1
            assert engine.metric_value("repro_service_errors_total") == 1
        finally:
            solver.gate.set()
            engine.close()

    def test_solo_failure_does_not_redispatch(self):
        solver = FlakySolver(fail_times=99)
        engine = SolveEngine(workers=1, queue_depth=4, solve_fn=solver)
        try:
            ticket = engine.submit(small_body())
            assert ticket.wait(10.0).status == 503
            assert solver.calls == 1  # no waiters -> no second chance
            assert engine.metric_value("repro_service_redispatch_total") == 0
        finally:
            engine.close()


class TestTimeouts:
    def test_overrun_returns_503_and_is_not_cached(self):
        def slow_solve(game, uncertainty, options, **_kwargs):
            time.sleep(0.2)
            return make_fake_result()

        engine = SolveEngine(workers=1, queue_depth=4, solve_fn=slow_solve,
                             request_timeout=0.05)
        try:
            ticket = engine.submit(small_body())
            result = ticket.wait(10.0)
            assert result.status == 503
            detail = json.loads(result.body)["error"]
            assert detail["type"] == "Timeout"
            assert "request budget" in detail["message"]
            # Not cached: a resubmission runs (and overruns) again.
            assert not engine.submit(small_body()).cached
            assert engine.metric_value("repro_service_cache_hits_total") == 0
        finally:
            engine.close()

    def test_timeout_does_not_redispatch_a_group(self):
        solver = GatedSolver()
        calls = []

        def slow_solve(game, uncertainty, options, **kwargs):
            calls.append(1)
            out = solver(game, uncertainty, options, **kwargs)
            time.sleep(0.1)
            return out

        engine = SolveEngine(workers=1, queue_depth=4, solve_fn=slow_solve,
                             request_timeout=0.05)
        try:
            leader = engine.submit(small_body())
            assert solver.started.wait(10.0)
            waiter = engine.submit(small_body())
            solver.gate.set()
            results = [leader.wait(10.0), waiter.wait(10.0)]
            # An overrun would overrun again: fail the group now rather
            # than burn a second worker slot.
            assert len(calls) == 1
            assert [r.status for r in results] == [503, 503]
        finally:
            solver.gate.set()
            engine.close()
