"""Unit tests for the daemon's admission primitives.

Token buckets run against a fake clock (no sleeps), the bounded queue's
memory bound and close-drain contract are exercised with real threads.
"""

import threading

import pytest

from repro.service.admission import (
    BoundedQueue,
    QueueClosedError,
    QuotaRegistry,
    RejectedError,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = bucket.try_acquire()
        assert retry == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_acquire() == 0.0

    def test_retry_after_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        bucket.try_acquire()
        clock.advance(0.125)  # half a token back
        assert bucket.try_acquire() == pytest.approx(0.125)

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)  # would be 6000 tokens uncapped
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_disabled_bucket_never_throttles(self):
        for rate in (None, 0, -1):
            bucket = TokenBucket(rate=rate, burst=1, clock=FakeClock())
            assert all(bucket.try_acquire() == 0.0 for _ in range(100))


class TestQuotaRegistry:
    def test_tenants_are_isolated(self):
        clock = FakeClock()
        quotas = QuotaRegistry(rate=1.0, burst=1, clock=clock)
        assert quotas.try_acquire("alice") == 0.0
        assert quotas.try_acquire("alice") > 0.0   # alice exhausted
        assert quotas.try_acquire("bob") == 0.0    # bob unaffected
        assert len(quotas) == 2

    def test_rejected_error_carries_reason_and_retry(self):
        err = RejectedError("quota", 2.5)
        assert err.reason == "quota"
        assert err.retry_after == 2.5
        assert "quota" in str(err)


class TestBoundedQueue:
    def test_bound_is_never_exceeded(self):
        queue = BoundedQueue(3)
        assert [queue.try_put(i) for i in range(5)] == \
            [True, True, True, False, False]
        assert len(queue) == 3

    def test_fifo_order(self):
        queue = BoundedQueue(4)
        for i in range(4):
            queue.try_put(i)
        assert [queue.get(timeout=0.1) for _ in range(4)] == [0, 1, 2, 3]

    def test_get_timeout_returns_none(self):
        queue = BoundedQueue(1)
        assert queue.get(timeout=0.05) is None

    def test_close_drains_then_signals(self):
        queue = BoundedQueue(4)
        queue.try_put("a")
        queue.try_put("b")
        queue.close()
        # accepted work survives the close...
        assert queue.get(timeout=0.1) == "a"
        assert queue.get(timeout=0.1) == "b"
        # ...then getters are told to stop, without any timeout wait.
        assert queue.get(timeout=30.0) is None

    def test_put_after_close_raises(self):
        queue = BoundedQueue(1)
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.try_put("late")

    def test_close_wakes_blocked_getters(self):
        queue = BoundedQueue(1)
        results = []

        def getter() -> None:
            results.append(queue.get(timeout=30.0))

        threads = [threading.Thread(target=getter) for _ in range(3)]
        for thread in threads:
            thread.start()
        queue.close()
        for thread in threads:
            thread.join(timeout=5.0)
        assert results == [None, None, None]

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)

    def test_concurrent_producers_respect_the_bound(self):
        queue = BoundedQueue(8)
        barrier = threading.Barrier(16)
        accepted = []
        lock = threading.Lock()

        def producer(i: int) -> None:
            barrier.wait()
            ok = queue.try_put(i)
            with lock:
                accepted.append(ok)

        threads = [threading.Thread(target=producer, args=(i,))
                   for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert sum(accepted) == 8     # exactly the bound
        assert len(queue) == 8
