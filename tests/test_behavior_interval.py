"""Unit and property tests for repro.behavior.interval."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.behavior.interval import (
    FunctionIntervalModel,
    IntervalSUQR,
    WeightBox,
)
from repro.game.payoffs import IntervalPayoffs


class TestWeightBox:
    def test_construction(self):
        b = WeightBox(-2.0, 1.0)
        assert b.lo == -2.0 and b.hi == 1.0

    def test_crossed_rejected(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            WeightBox(1.0, -1.0)

    def test_mid_and_halfwidth(self):
        b = WeightBox(-4.0, -2.0)
        assert b.mid == -3.0 and b.halfwidth == 1.0

    def test_scaled(self):
        b = WeightBox(-4.0, -2.0).scaled(0.5)
        assert b.lo == -3.5 and b.hi == -2.5

    def test_scaled_zero_collapses(self):
        b = WeightBox(-4.0, -2.0).scaled(0.0)
        assert b.lo == b.hi == -3.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            WeightBox(0.0, 1.0).scaled(-1.0)

    def test_sample_in_box(self):
        b = WeightBox(0.2, 0.8)
        for seed in range(10):
            assert 0.2 <= b.sample(seed) <= 0.8

    def test_product_range_exact(self):
        b = WeightBox(0.4, 0.9)
        lo, hi = b.product_range(np.array([-7.0]), np.array([-3.0]))
        assert lo[0] == pytest.approx(0.9 * -7.0)
        assert hi[0] == pytest.approx(0.4 * -3.0)

    @given(
        st.floats(-3, 3), st.floats(0, 2), st.floats(-3, 3), st.floats(0, 2),
        st.floats(0, 1), st.floats(0, 1),
    )
    def test_product_range_contains_samples(self, a, da, b, db, ta, tb):
        box = WeightBox(a, a + da)
        y_lo, y_hi = b, b + db
        lo, hi = box.product_range(np.array([y_lo]), np.array([y_hi]))
        w = a + ta * da
        y = y_lo + tb * db
        assert lo[0] - 1e-9 <= w * y <= hi[0] + 1e-9


def paper_interval_payoffs():
    return IntervalPayoffs.zero_sum_midpoint(
        attacker_reward_lo=[1.0, 5.0],
        attacker_reward_hi=[5.0, 9.0],
        attacker_penalty_lo=[-7.0, -9.0],
        attacker_penalty_hi=[-3.0, -5.0],
    )


class TestIntervalSUQREndpoint:
    def setup_method(self):
        self.model = IntervalSUQR(
            paper_interval_payoffs(), w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9)
        )

    def test_paper_lower_bound_value(self):
        """Section III: L_1(0.3) = e^{-4.1}."""
        lo = self.model.lower(np.array([0.3, 0.0]))
        assert lo[0] == pytest.approx(np.exp(-4.1))

    def test_paper_upper_bound_value(self):
        """Section III: U_1(0.3) = e^{1.7}."""
        hi = self.model.upper(np.array([0.3, 0.0]))
        assert hi[0] == pytest.approx(np.exp(1.7))

    def test_bounds_ordered_everywhere(self):
        self.model.validate()

    def test_grid_matches_pointwise(self):
        pts = np.linspace(0, 1, 11)
        lo_grid = self.model.lower_on_grid(pts)
        for j, p in enumerate(pts):
            np.testing.assert_allclose(
                lo_grid[:, j], self.model.lower(np.full(2, p))
            )

    def test_positive_w1_hi_rejected(self):
        with pytest.raises(ValueError, match="w1"):
            IntervalSUQR(paper_interval_payoffs(), w1=(-1.0, 0.5), w2=(0.5, 1.0), w3=(0.4, 0.9))

    def test_bad_convention_rejected(self):
        with pytest.raises(ValueError, match="convention"):
            IntervalSUQR(
                paper_interval_payoffs(),
                w1=(-2.0, -1.0), w2=(0.5, 1.0), w3=(0.4, 0.9),
                convention="loose",
            )

    def test_crossed_endpoint_interval_detected(self):
        """Deep negative penalties make the endpoint rule cross: the
        constructor must refuse rather than produce L > U."""
        payoffs = IntervalPayoffs.zero_sum_midpoint(
            attacker_reward_lo=[1.0],
            attacker_reward_hi=[1.1],
            attacker_penalty_lo=[-10.0],
            attacker_penalty_hi=[-9.9],
        )
        with pytest.raises(ValueError, match="tight"):
            IntervalSUQR(payoffs, w1=(-2.0, -1.0), w2=(0.5, 0.6), w3=(0.1, 0.9))

    def test_lipschitz_bounds_are_valid(self):
        lips_l, lips_u = self.model.lipschitz_bounds()
        grid = np.linspace(0, 1, 201)
        lo = self.model.lower_on_grid(grid)
        hi = self.model.upper_on_grid(grid)
        dl = np.abs(np.diff(lo, axis=1)).max(axis=1) / (grid[1] - grid[0])
        du = np.abs(np.diff(hi, axis=1)).max(axis=1) / (grid[1] - grid[0])
        assert np.all(lips_l >= dl - 1e-9)
        assert np.all(lips_u >= du - 1e-9)

    def test_midpoint_model_weights(self):
        mid = self.model.midpoint_model()
        assert mid.weights.w1 == pytest.approx(-4.0)
        assert mid.weights.w2 == pytest.approx(0.75)
        assert mid.weights.w3 == pytest.approx(0.65)

    def test_sample_model_within_set(self):
        """Sampled models' F must lie inside the *tight* intervals."""
        tight = IntervalSUQR(
            paper_interval_payoffs(),
            w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9),
            convention="tight",
        )
        x = np.array([0.4, 0.6])
        lo, hi = tight.lower(x), tight.upper(x)
        for seed in range(10):
            f = tight.sample_model(seed).attack_weights(x)
            assert np.all(f >= lo * (1 - 1e-9))
            assert np.all(f <= hi * (1 + 1e-9))

    def test_scaled_uncertainty_shrinks(self):
        """Under the *tight* convention a narrower weight box nests inside
        the wider one (endpoint is not monotone under scaling — see the
        module docstring on its non-conservative lower end)."""
        tight = IntervalSUQR(
            paper_interval_payoffs(),
            w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9),
            convention="tight",
        )
        narrower = tight.with_scaled_uncertainty(0.5)
        x = np.array([0.3, 0.7])
        assert np.all(narrower.lower(x) >= tight.lower(x) - 1e-12)
        assert np.all(narrower.upper(x) <= tight.upper(x) + 1e-12)

    def test_scaled_to_zero_collapses(self):
        point = self.model.with_scaled_uncertainty(0.0)
        x = np.array([0.3, 0.7])
        # Weight boxes collapse; payoff intervals remain, so L < U still,
        # but the band must be strictly narrower than the original.
        band_orig = self.model.upper(x) / self.model.lower(x)
        band_new = point.upper(x) / point.lower(x)
        assert np.all(band_new < band_orig)


class TestIntervalSUQRTight:
    def setup_method(self):
        self.endpoint = IntervalSUQR(
            paper_interval_payoffs(), w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9)
        )
        self.tight = IntervalSUQR(
            paper_interval_payoffs(),
            w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9),
            convention="tight",
        )

    def test_tight_contains_endpoint_band(self):
        """The tight set is the exact range; the endpoint rule's band must
        lie inside-or-equal on the upper end and its lower end can only be
        *above* the tight lower bound (endpoint is not conservative)."""
        x = np.array([0.25, 0.75])
        assert np.all(self.tight.lower(x) <= self.endpoint.lower(x) + 1e-12)
        assert np.all(self.tight.upper(x) >= self.endpoint.upper(x) - 1e-12)

    def test_tight_validates(self):
        self.tight.validate()

    def test_tight_contains_all_corner_models(self):
        import itertools

        x = np.array([0.4, 0.6])
        lo, hi = self.tight.lower(x), self.tight.upper(x)
        p = paper_interval_payoffs()
        for w1 in (-6.0, -2.0):
            for w2, w3 in itertools.product((0.5, 1.0), (0.4, 0.9)):
                for r, pen in itertools.product(
                    (p.attacker_reward_lo, p.attacker_reward_hi),
                    (p.attacker_penalty_lo, p.attacker_penalty_hi),
                ):
                    f = np.exp(w1 * x + w2 * r + w3 * pen)
                    assert np.all(f >= lo * (1 - 1e-9))
                    assert np.all(f <= hi * (1 + 1e-9))

    def test_convention_property(self):
        assert self.endpoint.convention == "endpoint"
        assert self.tight.convention == "tight"


class TestFunctionIntervalModel:
    def make(self):
        consts = np.array([1.0, 2.0])

        def lower_fn(p):
            return np.exp(-2.0 * p[None, :]) * consts[:, None]

        def upper_fn(p):
            return np.exp(-1.0 * p[None, :]) * (consts[:, None] + 1.0)

        return FunctionIntervalModel(2, lower_fn, upper_fn)

    def test_construction_validates(self):
        model = self.make()
        assert model.num_targets == 2

    def test_pointwise_evaluation(self):
        model = self.make()
        x = np.array([0.5, 0.25])
        np.testing.assert_allclose(
            model.lower(x), np.exp(-2 * x) * np.array([1.0, 2.0])
        )
        np.testing.assert_allclose(
            model.upper(x), np.exp(-1 * x) * np.array([2.0, 3.0])
        )

    def test_increasing_bound_rejected(self):
        def bad_lower(p):
            return np.exp(+1.0 * p[None, :]) * np.ones((2, len(p)))

        def upper_fn(p):
            return np.exp(+2.0 * p[None, :]) * np.ones((2, len(p)))

        with pytest.raises(ValueError, match="non-increasing"):
            FunctionIntervalModel(2, bad_lower, upper_fn)

    def test_negative_bound_rejected(self):
        def neg(p):
            return -np.ones((2, len(p)))

        with pytest.raises(ValueError, match="positive"):
            FunctionIntervalModel(2, neg, neg)

    def test_crossed_bounds_rejected(self):
        def lo(p):
            return 2.0 * np.exp(-p[None, :]) * np.ones((2, 1))

        def hi(p):
            return 1.0 * np.exp(-p[None, :]) * np.ones((2, 1))

        with pytest.raises(ValueError, match="exceeds"):
            FunctionIntervalModel(2, lo, hi)

    def test_bad_shape_rejected(self):
        def wrong(p):
            return np.ones((3, len(p)))

        with pytest.raises(ValueError, match="shape"):
            FunctionIntervalModel(2, wrong, wrong)

    def test_default_lipschitz_estimate(self):
        model = self.make()
        dl, du = model.lipschitz_bounds()
        # |d/dx e^{-2x}| peaks at x=0 with value 2 (times the constant).
        assert dl[0] == pytest.approx(2.0, rel=0.05)
        assert dl[1] == pytest.approx(4.0, rel=0.05)


class TestBandScaledModel:
    def base_model(self):
        from repro.behavior.interval import IntervalSUQR

        payoffs = paper_interval_payoffs()
        return IntervalSUQR(
            payoffs, w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9),
            convention="tight",
        )

    def test_factor_one_is_bitwise_identity(self):
        from repro.behavior.interval import BandScaledModel

        base = self.base_model()
        wrapped = BandScaledModel(base, 1.0)
        pts = np.linspace(0.0, 1.0, 11)
        np.testing.assert_array_equal(
            wrapped.lower_on_grid(pts), base.lower_on_grid(pts)
        )
        np.testing.assert_array_equal(
            wrapped.upper_on_grid(pts), base.upper_on_grid(pts)
        )

    def test_small_factor_shrinks_towards_centre(self):
        from repro.behavior.interval import BandScaledModel

        base = self.base_model()
        narrow = BandScaledModel(base, 0.5)
        pts = np.linspace(0.0, 1.0, 11)
        assert np.all(narrow.lower_on_grid(pts) > base.lower_on_grid(pts))
        assert np.all(narrow.upper_on_grid(pts) < base.upper_on_grid(pts))
        assert np.all(narrow.lower_on_grid(pts) <= narrow.upper_on_grid(pts))

    def test_large_factor_widens(self):
        from repro.behavior.interval import BandScaledModel

        base = self.base_model()
        wide = BandScaledModel(base, 1.2)
        pts = np.linspace(0.0, 1.0, 11)
        assert np.all(wide.lower_on_grid(pts) < base.lower_on_grid(pts))
        assert np.all(wide.upper_on_grid(pts) > base.upper_on_grid(pts))

    def test_factor_zero_collapses_to_geometric_centre(self):
        from repro.behavior.interval import BandScaledModel

        base = self.base_model()
        point = BandScaledModel(base, 0.0)
        pts = np.linspace(0.0, 1.0, 5)
        lo, hi = point.lower_on_grid(pts), point.upper_on_grid(pts)
        np.testing.assert_allclose(lo, hi)
        np.testing.assert_allclose(
            lo, np.sqrt(base.lower_on_grid(pts) * base.upper_on_grid(pts))
        )

    def test_scaled_composes_multiplicatively(self):
        from repro.behavior.interval import BandScaledModel

        base = self.base_model()
        composed = BandScaledModel(base, 0.8).scaled(0.5)
        direct = BandScaledModel(base, 0.4)
        assert composed.factor == pytest.approx(0.4)
        pts = np.linspace(0.0, 1.0, 7)
        np.testing.assert_allclose(
            composed.lower_on_grid(pts), direct.lower_on_grid(pts)
        )
        np.testing.assert_allclose(
            composed.upper_on_grid(pts), direct.upper_on_grid(pts)
        )

    def test_invalid_factor_rejected(self):
        from repro.behavior.interval import BandScaledModel

        base = self.base_model()
        with pytest.raises(ValueError, match="factor"):
            BandScaledModel(base, -0.1)
        with pytest.raises(ValueError, match="factor"):
            BandScaledModel(base, float("nan"))

    def test_num_targets_passthrough(self):
        from repro.behavior.interval import BandScaledModel

        base = self.base_model()
        assert BandScaledModel(base, 0.7).num_targets == base.num_targets
