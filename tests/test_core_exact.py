"""Tests for the multi-start non-convex comparator (repro.core.exact)."""

import numpy as np
import pytest

from repro.behavior.interval import IntervalSUQR
from repro.core.cubis import solve_cubis
from repro.core.exact import solve_exact
from repro.game.generator import random_interval_game, table1_game


class TestSolveExact:
    def test_feasible_strategy(self, small_interval_game, small_uncertainty):
        res = solve_exact(small_interval_game, small_uncertainty, num_starts=6, seed=0)
        assert small_interval_game.strategy_space.contains(res.strategy, atol=1e-5)

    def test_close_to_cubis_on_table1(self):
        game = table1_game()
        uncertainty = IntervalSUQR(
            game.payoffs, w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9)
        )
        cubis = solve_cubis(game, uncertainty, num_segments=25, epsilon=1e-4)
        exact = solve_exact(game, uncertainty, num_starts=12, seed=1)
        # The comparator may be worse (local optima) but should not be
        # dramatically better than CUBIS (Theorem 1's guarantee).
        assert exact.worst_case_value <= cubis.worst_case_value + 0.05

    def test_deterministic_given_seed(self, small_interval_game, small_uncertainty):
        a = solve_exact(small_interval_game, small_uncertainty, num_starts=4, seed=9)
        b = solve_exact(small_interval_game, small_uncertainty, num_starts=4, seed=9)
        np.testing.assert_allclose(a.strategy, b.strategy)
        assert a.worst_case_value == b.worst_case_value

    def test_bookkeeping_fields(self, small_interval_game, small_uncertainty):
        res = solve_exact(small_interval_game, small_uncertainty, num_starts=5, seed=2)
        assert res.num_starts == 5
        assert 0 <= res.num_converged <= 5
        assert res.solve_seconds > 0

    def test_target_mismatch(self, small_uncertainty):
        other = random_interval_game(9, seed=0)
        with pytest.raises(ValueError, match="targets"):
            solve_exact(other, small_uncertainty)

    def test_more_starts_never_worse(self, small_interval_game, small_uncertainty):
        few = solve_exact(small_interval_game, small_uncertainty, num_starts=2, seed=3)
        many = solve_exact(small_interval_game, small_uncertainty, num_starts=12, seed=3)
        assert many.worst_case_value >= few.worst_case_value - 0.05
