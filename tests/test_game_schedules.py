"""Unit + property tests for repro.game.schedules."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.game.schedules import PatrolSchedule, decompose_coverage, sample_patrols
from repro.game.strategy import StrategySpace


class TestPatrolSchedule:
    def test_marginals(self):
        s = PatrolSchedule(
            patrols=np.array([[True, False], [False, True]]),
            probabilities=np.array([0.3, 0.7]),
        )
        np.testing.assert_allclose(s.marginals(), [0.3, 0.7])

    def test_resources_used(self):
        s = PatrolSchedule(
            patrols=np.array([[True, True, False]]),
            probabilities=np.array([1.0]),
        )
        np.testing.assert_array_equal(s.resources_used(), [2])

    def test_bad_distribution_rejected(self):
        with pytest.raises(ValueError, match="distribution"):
            PatrolSchedule(np.array([[True]]), np.array([0.5]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="per patrol"):
            PatrolSchedule(np.array([[True]]), np.array([0.5, 0.5]))


class TestDecomposeCoverage:
    def test_integral_coverage_single_patrol(self):
        s = decompose_coverage(np.array([1.0, 0.0, 1.0]))
        assert s.num_patrols == 1
        np.testing.assert_array_equal(s.patrols[0], [True, False, True])

    def test_zero_coverage(self):
        s = decompose_coverage(np.zeros(3))
        np.testing.assert_allclose(s.marginals(), np.zeros(3))

    def test_simple_split(self):
        s = decompose_coverage(np.array([0.5, 0.5]))
        np.testing.assert_allclose(s.marginals(), [0.5, 0.5], atol=1e-9)
        np.testing.assert_array_equal(s.resources_used(), np.ones(s.num_patrols))

    def test_marginals_match_exactly(self):
        x = np.array([0.7, 0.3, 0.6, 0.4])  # R = 2
        s = decompose_coverage(x)
        np.testing.assert_allclose(s.marginals(), x, atol=1e-9)

    def test_every_patrol_uses_all_resources(self):
        x = np.array([0.9, 0.8, 0.3])  # R = 2
        s = decompose_coverage(x)
        np.testing.assert_array_equal(s.resources_used(), np.full(s.num_patrols, 2))

    def test_patrol_count_at_most_t_plus_one(self):
        x = np.array([0.25, 0.15, 0.35, 0.55, 0.45, 0.25])  # R = 2
        s = decompose_coverage(x)
        assert s.num_patrols <= len(x) + 1

    def test_fractional_total_rejected(self):
        with pytest.raises(ValueError, match="integral"):
            decompose_coverage(np.array([0.5, 0.2]))

    def test_out_of_box_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            decompose_coverage(np.array([1.5, 0.5]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            decompose_coverage(np.ones((2, 2)))

    @given(st.integers(2, 8), st.integers(1, 3), st.integers(0, 10**6))
    def test_random_strategies_decompose(self, t, r, seed):
        if r > t:
            r = t
        space = StrategySpace(t, r)
        x = space.random(seed)
        s = decompose_coverage(x)
        np.testing.assert_allclose(s.marginals(), x, atol=1e-7)
        np.testing.assert_array_equal(s.resources_used(), np.full(s.num_patrols, r))
        assert s.probabilities.min() > 0


class TestSamplePatrols:
    def test_shape(self):
        cal = sample_patrols(np.array([0.5, 0.5]), num_days=10, seed=0)
        assert cal.shape == (10, 2)

    def test_each_day_uses_r_resources(self):
        x = np.array([0.6, 0.8, 0.6])  # R = 2
        cal = sample_patrols(x, num_days=25, seed=1)
        np.testing.assert_array_equal(cal.sum(axis=1), np.full(25, 2))

    def test_empirical_coverage_converges(self):
        x = np.array([0.7, 0.3, 0.5, 0.5])
        cal = sample_patrols(x, num_days=40_000, seed=2)
        np.testing.assert_allclose(cal.mean(axis=0), x, atol=0.01)

    def test_deterministic(self):
        x = np.array([0.5, 0.5])
        np.testing.assert_array_equal(
            sample_patrols(x, 7, seed=3), sample_patrols(x, 7, seed=3)
        )

    def test_invalid_days(self):
        with pytest.raises(ValueError, match="num_days"):
            sample_patrols(np.array([1.0]), 0)
