"""Tests for coverage side constraints and their CUBIS integration."""

import numpy as np
import pytest

from repro.core.cubis import solve_cubis
from repro.game.constraints import CoverageConstraints


class TestCoverageConstraints:
    def test_construction(self):
        c = CoverageConstraints(np.array([[1.0, 1.0]]), np.array([0.5]))
        assert c.num_constraints == 1 and c.num_targets == 2

    def test_rhs_shape_mismatch(self):
        with pytest.raises(ValueError, match="one entry per constraint"):
            CoverageConstraints(np.ones((2, 3)), np.ones(3))

    def test_satisfied(self):
        c = CoverageConstraints(np.array([[1.0, 0.0]]), np.array([0.4]))
        assert c.satisfied([0.3, 0.9])
        assert not c.satisfied([0.5, 0.0])
        assert not c.satisfied([0.3])  # wrong shape

    def test_stacked(self):
        a = CoverageConstraints(np.array([[1.0, 0.0]]), np.array([0.4]))
        b = CoverageConstraints(np.array([[0.0, 1.0]]), np.array([0.6]))
        both = a.stacked(b)
        assert both.num_constraints == 2
        assert both.satisfied([0.3, 0.5])
        assert not both.satisfied([0.3, 0.7])

    def test_stacked_mismatch(self):
        a = CoverageConstraints(np.ones((1, 2)), np.ones(1))
        b = CoverageConstraints(np.ones((1, 3)), np.ones(1))
        with pytest.raises(ValueError, match="different target counts"):
            a.stacked(b)

    def test_zone_caps(self):
        c = CoverageConstraints.zone_caps(4, zones=[[0, 1], [2, 3]], caps=[0.5, 1.5])
        assert c.satisfied([0.25, 0.25, 0.75, 0.75])
        assert not c.satisfied([0.4, 0.4, 0.0, 0.0])

    def test_zone_caps_validation(self):
        with pytest.raises(ValueError, match="one cap per zone"):
            CoverageConstraints.zone_caps(3, zones=[[0]], caps=[0.5, 0.5])
        with pytest.raises(ValueError, match="out of range"):
            CoverageConstraints.zone_caps(3, zones=[[5]], caps=[0.5])

    def test_minimum_coverage(self):
        c = CoverageConstraints.minimum_coverage(3, targets=[1], floors=[0.4])
        assert c.satisfied([0.0, 0.5, 0.0])
        assert not c.satisfied([0.5, 0.3, 0.0])

    def test_minimum_coverage_validation(self):
        with pytest.raises(ValueError, match="one floor per"):
            CoverageConstraints.minimum_coverage(3, targets=[1, 2], floors=[0.4])
        with pytest.raises(ValueError, match="out of range"):
            CoverageConstraints.minimum_coverage(3, targets=[4], floors=[0.4])


class TestConstrainedCubis:
    def test_vacuous_constraints_match_unconstrained(self, small_interval_game, small_uncertainty):
        vacuous = CoverageConstraints(
            np.ones((1, 4)), np.array([10.0])  # sum x <= 10: never binding
        )
        base = solve_cubis(small_interval_game, small_uncertainty, num_segments=10, epsilon=0.02)
        constrained = solve_cubis(
            small_interval_game, small_uncertainty, num_segments=10, epsilon=0.02,
            coverage_constraints=vacuous,
        )
        assert constrained.worst_case_value == pytest.approx(
            base.worst_case_value, abs=0.05
        )

    def test_binding_cap_honoured(self, small_interval_game, small_uncertainty):
        base = solve_cubis(small_interval_game, small_uncertainty, num_segments=10, epsilon=0.02)
        heavy = int(np.argmax(base.strategy))
        cap = max(0.05, base.strategy[heavy] / 2)
        constraints = CoverageConstraints.zone_caps(
            4, zones=[[heavy]], caps=[cap]
        )
        constrained = solve_cubis(
            small_interval_game, small_uncertainty, num_segments=10, epsilon=0.02,
            coverage_constraints=constraints,
        )
        assert constrained.strategy[heavy] <= cap + 1e-6
        # Constraining can only hurt (weakly).
        assert constrained.worst_case_value <= base.worst_case_value + 0.05

    def test_minimum_coverage_honoured(self, small_interval_game, small_uncertainty):
        floors = CoverageConstraints.minimum_coverage(4, targets=[3], floors=[0.5])
        constrained = solve_cubis(
            small_interval_game, small_uncertainty, num_segments=10, epsilon=0.02,
            coverage_constraints=floors,
        )
        assert constrained.strategy[3] >= 0.5 - 1e-6

    def test_dp_oracle_rejects_constraints(self, small_interval_game, small_uncertainty):
        vacuous = CoverageConstraints(np.ones((1, 4)), np.array([10.0]))
        with pytest.raises(ValueError, match="milp"):
            solve_cubis(
                small_interval_game, small_uncertainty, oracle="dp",
                coverage_constraints=vacuous,
            )

    def test_constraint_target_mismatch(self, small_interval_game, small_uncertainty):
        wrong = CoverageConstraints(np.ones((1, 7)), np.array([1.0]))
        with pytest.raises(ValueError, match="targets"):
            solve_cubis(
                small_interval_game, small_uncertainty,
                coverage_constraints=wrong, num_segments=5, epsilon=0.1,
            )
