"""Tests for the payoff-maximin baseline."""

import numpy as np
import pytest

from repro.baselines.maximin import solve_maximin
from repro.game.generator import random_game, random_interval_game
from repro.game.payoffs import PayoffMatrix
from repro.game.ssg import SecurityGame


class TestSolveMaximin:
    def test_symmetric_game_uniform_solution(self):
        payoffs = PayoffMatrix(
            defender_reward=[2.0, 2.0],
            defender_penalty=[-2.0, -2.0],
            attacker_reward=[1.0, 1.0],
            attacker_penalty=[-1.0, -1.0],
        )
        game = SecurityGame(payoffs, num_resources=1)
        res = solve_maximin(game)
        np.testing.assert_allclose(res.strategy, [0.5, 0.5], atol=1e-6)
        assert res.floor_value == pytest.approx(0.0, abs=1e-8)

    def test_floor_equals_min_utility(self):
        game = random_game(6, seed=0)
        res = solve_maximin(game)
        ud = game.defender_utilities(res.strategy)
        assert res.floor_value == pytest.approx(ud.min(), abs=1e-6)

    def test_floor_is_optimal_vs_random_strategies(self):
        game = random_game(5, seed=1)
        res = solve_maximin(game)
        for seed in range(30):
            x = game.strategy_space.random(seed)
            assert res.floor_value >= game.defender_utilities(x).min() - 1e-7

    def test_strategy_feasible(self):
        game = random_game(8, num_resources=3, seed=2)
        res = solve_maximin(game)
        assert game.strategy_space.contains(res.strategy, atol=1e-6)

    def test_works_on_interval_games(self):
        game = random_interval_game(5, seed=3)
        res = solve_maximin(game)
        assert game.strategy_space.contains(res.strategy, atol=1e-6)

    def test_skewed_game_prioritises_high_stakes(self):
        payoffs = PayoffMatrix(
            defender_reward=[1.0, 1.0],
            defender_penalty=[-10.0, -1.0],
            attacker_reward=[1.0, 1.0],
            attacker_penalty=[-1.0, -1.0],
        )
        game = SecurityGame(payoffs, num_resources=1)
        res = solve_maximin(game)
        # The -10 target needs more coverage to equalise the floor.
        assert res.strategy[0] > res.strategy[1]

    def test_timing_recorded(self):
        game = random_game(4, seed=4)
        assert solve_maximin(game).solve_seconds > 0.0
