"""Unit tests for repro.solvers.assembly."""

import numpy as np
import pytest

from repro.solvers.assembly import ConstraintBuilder, VariableLayout


class TestVariableLayout:
    def test_contiguous_groups(self):
        layout = VariableLayout()
        a = layout.add("a", 3)
        b = layout.add("b", 2)
        np.testing.assert_array_equal(a, [0, 1, 2])
        np.testing.assert_array_equal(b, [3, 4])
        assert layout.size == 5

    def test_lookup(self):
        layout = VariableLayout()
        layout.add("x", 4)
        np.testing.assert_array_equal(layout["x"], [0, 1, 2, 3])

    def test_duplicate_rejected(self):
        layout = VariableLayout()
        layout.add("x", 1)
        with pytest.raises(ValueError, match="already defined"):
            layout.add("x", 1)

    def test_empty_group(self):
        layout = VariableLayout()
        g = layout.add("empty", 0)
        assert len(g) == 0 and layout.size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            VariableLayout().add("x", -1)


class TestConstraintBuilder:
    def test_single_row(self):
        b = ConstraintBuilder(3)
        b.add_row([0, 2], [1.0, -2.0], 5.0)
        A, rhs = b.build()
        assert A.shape == (1, 3)
        np.testing.assert_allclose(A.toarray(), [[1.0, 0.0, -2.0]])
        np.testing.assert_allclose(rhs, [5.0])

    def test_block_rows(self):
        b = ConstraintBuilder(4)
        b.add_block(
            columns=np.array([[0, 1], [2, 3]]),
            coefficients=np.array([[1.0, 2.0], [3.0, 4.0]]),
            rhs=np.array([1.0, 2.0]),
        )
        A, rhs = b.build()
        np.testing.assert_allclose(
            A.toarray(), [[1.0, 2.0, 0.0, 0.0], [0.0, 0.0, 3.0, 4.0]]
        )
        np.testing.assert_allclose(rhs, [1.0, 2.0])

    def test_mixed_rows_and_blocks(self):
        b = ConstraintBuilder(2)
        b.add_row([0], [1.0], 1.0)
        b.add_block(np.array([[1]]), np.array([[2.0]]), np.array([3.0]))
        A, rhs = b.build()
        assert A.shape == (2, 2)
        assert b.num_rows == 2

    def test_empty_build(self):
        A, rhs = ConstraintBuilder(3).build()
        assert A.shape == (0, 3)
        assert rhs.shape == (0,)

    def test_out_of_range_column(self):
        b = ConstraintBuilder(2)
        with pytest.raises(ValueError, match="out of range"):
            b.add_row([2], [1.0], 0.0)
        with pytest.raises(ValueError, match="out of range"):
            b.add_block(np.array([[5]]), np.array([[1.0]]), np.array([0.0]))

    def test_shape_mismatch(self):
        b = ConstraintBuilder(2)
        with pytest.raises(ValueError, match="matching"):
            b.add_row([0, 1], [1.0], 0.0)
        with pytest.raises(ValueError, match="2-D"):
            b.add_block(np.array([0]), np.array([1.0]), np.array([0.0]))

    def test_rhs_shape_mismatch(self):
        b = ConstraintBuilder(2)
        with pytest.raises(ValueError, match="rhs"):
            b.add_block(np.array([[0]]), np.array([[1.0]]), np.array([0.0, 1.0]))

    def test_zero_coefficients_dropped(self):
        b = ConstraintBuilder(3)
        b.add_row([0, 1, 2], [1.0, 0.0, 2.0], 1.0)
        A, _ = b.build()
        assert A.nnz == 2

    def test_invalid_size(self):
        with pytest.raises(ValueError, match="num_variables"):
            ConstraintBuilder(0)

    def test_duplicate_columns_summed(self):
        """COO assembly sums duplicate (row, col) entries — document it."""
        b = ConstraintBuilder(2)
        b.add_row([0, 0], [1.0, 2.0], 1.0)
        A, _ = b.build()
        assert A[0, 0] == 3.0
