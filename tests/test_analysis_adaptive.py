"""Tests for the adaptive deployment loop (repro.analysis.adaptive)."""

import numpy as np
import pytest

from repro.analysis.adaptive import simulate_deployment
from repro.behavior.suqr import SUQR, SUQRWeights
from repro.game.generator import wildlife_game


@pytest.fixture(scope="module")
def world():
    game = wildlife_game(num_sites=6, num_patrols=2, uncertainty=0.25, seed=13)
    truth = SUQR(game.midpoint_game().payoffs, SUQRWeights(-3.2, 0.75, 0.6))
    return game, truth


@pytest.fixture(scope="module")
def cubis_history(world):
    game, truth = world
    return simulate_deployment(
        game, truth, planner="cubis", num_rounds=4, attacks_per_round=60,
        num_bootstrap=8, num_segments=8, epsilon=0.05, seed=0,
    )


class TestSimulateDeployment:
    def test_round_count_and_fields(self, cubis_history):
        assert len(cubis_history.rounds) == 4
        for i, r in enumerate(cubis_history.rounds):
            assert r.round_index == i
            assert np.isfinite(r.realised_utility)
            assert np.isfinite(r.guaranteed_worst_case)
            assert r.total_interval_halfwidth > 0

    def test_observations_accumulate(self, cubis_history):
        obs = [r.observations_so_far for r in cubis_history.rounds]
        assert obs[0] == 0
        assert obs == sorted(obs)
        assert obs[-1] == 3 * 60

    def test_realised_at_least_guarantee(self, cubis_history):
        """The truth lies inside (or near) the learned set, so realised
        utility should not fall below the worst-case guarantee by more
        than learning noise."""
        gap = cubis_history.realised() - cubis_history.guarantees()
        assert np.all(gap >= -0.5)

    def test_uncertainty_shrinks_with_data(self, cubis_history):
        """Bootstrap widths are noisy round to round (early data comes
        from near-identical strategies, which identify SUQR poorly), but
        by the final round the intervals must have collapsed."""
        widths = cubis_history.interval_widths()
        assert widths[-1] < widths[0]

    def test_realised_utility_improves_once_learned(self, cubis_history):
        realised = cubis_history.realised()
        assert realised[-1] > realised[0]

    def test_accessors(self, cubis_history):
        assert cubis_history.realised().shape == (4,)
        assert cubis_history.guarantees().shape == (4,)
        assert cubis_history.planner == "cubis"

    def test_midpoint_planner_runs(self, world):
        game, truth = world
        history = simulate_deployment(
            game, truth, planner="midpoint", num_rounds=2, attacks_per_round=40,
            num_bootstrap=6, num_segments=8, epsilon=0.05, seed=1,
        )
        assert len(history.rounds) == 2
        assert history.planner == "midpoint"

    def test_deterministic(self, world):
        game, truth = world
        a = simulate_deployment(
            game, truth, num_rounds=2, attacks_per_round=20, num_bootstrap=5,
            num_segments=6, epsilon=0.1, seed=7,
        )
        b = simulate_deployment(
            game, truth, num_rounds=2, attacks_per_round=20, num_bootstrap=5,
            num_segments=6, epsilon=0.1, seed=7,
        )
        np.testing.assert_allclose(a.realised(), b.realised())

    def test_validation(self, world):
        game, truth = world
        with pytest.raises(ValueError, match="planner"):
            simulate_deployment(game, truth, planner="oracle")
        with pytest.raises(ValueError, match="num_rounds"):
            simulate_deployment(game, truth, num_rounds=0)

    def test_truth_target_mismatch(self, world):
        game, _ = world
        other = wildlife_game(num_sites=9, seed=2)
        bad_truth = SUQR(other.midpoint_game().payoffs, SUQRWeights(-3.0, 0.7, 0.5))
        with pytest.raises(ValueError, match="target count"):
            simulate_deployment(game, bad_truth)
