"""Unit tests for repro.game.ssg."""

import numpy as np
import pytest

from repro.game.ssg import IntervalSecurityGame, SecurityGame


class TestSecurityGame:
    def test_basic_properties(self, simple_game):
        assert simple_game.num_targets == 3
        assert simple_game.num_resources == 1.0
        assert simple_game.strategy_space.num_targets == 3

    def test_invalid_resources(self, simple_payoffs):
        with pytest.raises(ValueError, match="num_resources"):
            SecurityGame(simple_payoffs, num_resources=10)

    def test_defender_utilities_delegate(self, simple_game):
        x = np.array([0.5, 0.25, 0.25])
        np.testing.assert_allclose(
            simple_game.defender_utilities(x),
            simple_game.payoffs.defender_utilities(x),
        )

    def test_attacker_utilities_delegate(self, simple_game):
        x = np.array([0.5, 0.25, 0.25])
        np.testing.assert_allclose(
            simple_game.attacker_utilities(x),
            simple_game.payoffs.attacker_utilities(x),
        )

    def test_expected_defender_utility(self, simple_game):
        x = simple_game.strategy_space.uniform()
        q = np.array([1.0, 0.0, 0.0])
        val = simple_game.expected_defender_utility(x, q)
        assert val == pytest.approx(simple_game.defender_utilities(x)[0])

    def test_expected_defender_utility_rejects_bad_distribution(self, simple_game):
        x = simple_game.strategy_space.uniform()
        with pytest.raises(ValueError, match="sum to"):
            simple_game.expected_defender_utility(x, [0.5, 0.2, 0.2])

    def test_expected_defender_utility_length_check(self, simple_game):
        x = simple_game.strategy_space.uniform()
        with pytest.raises(ValueError, match="length"):
            simple_game.expected_defender_utility(x, [0.5, 0.5])

    def test_utility_range(self, simple_game):
        assert simple_game.utility_range() == (-8.0, 6.0)


class TestIntervalSecurityGame:
    def test_basic_properties(self, small_interval_game):
        g = small_interval_game
        assert g.num_targets == 4
        assert g.num_resources == 1.5

    def test_midpoint_game_type(self, small_interval_game):
        mid = small_interval_game.midpoint_game()
        assert isinstance(mid, SecurityGame)
        assert mid.num_resources == small_interval_game.num_resources

    def test_midpoint_preserves_defender_payoffs(self, small_interval_game):
        mid = small_interval_game.midpoint_game()
        np.testing.assert_array_equal(
            mid.payoffs.defender_reward, small_interval_game.payoffs.defender_reward
        )

    def test_defender_utilities(self, small_interval_game):
        x = small_interval_game.strategy_space.uniform()
        ud = small_interval_game.defender_utilities(x)
        assert ud.shape == (4,)

    def test_utility_range_matches_payoffs(self, small_interval_game):
        assert (
            small_interval_game.utility_range()
            == small_interval_game.payoffs.utility_range()
        )

    def test_invalid_resources(self, small_interval_game):
        with pytest.raises(ValueError, match="num_resources"):
            IntervalSecurityGame(small_interval_game.payoffs, num_resources=0)
