"""End-to-end telemetry tests: the solve pipeline traced under a live
context, counter/result-field agreement, and parallel sweep merges."""

import pytest

from repro import telemetry
from repro.analysis.sweep import run_grid
from repro.behavior.interval import IntervalSUQR
from repro.core.cubis import solve_cubis
from repro.game.generator import random_interval_game, table1_game
from repro.telemetry import Telemetry


def _table1_inputs():
    game = table1_game()
    uncertainty = IntervalSUQR(
        game.payoffs, w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9)
    )
    return game, uncertainty


def _telemetry_trial(rng, trial_index, *, num_targets):
    """Module-level (picklable) sweep trial that solves a small game and
    records deterministic values into a custom histogram."""
    game = random_interval_game(num_targets, seed=rng)
    uncertainty = IntervalSUQR(
        game.payoffs, w1=(-4.0, -2.0), w2=(0.6, 0.9), w3=(0.3, 0.6)
    )
    result = solve_cubis(game, uncertainty, num_segments=6, epsilon=0.05)
    # Deterministic observations (not timings): bit-identical across any
    # workers setting.
    telemetry.histogram(
        "test_trial_values", buckets=(1.0, 2.0, 4.0)
    ).observe(trial_index)
    yield {"worst_case": result.worst_case_value,
           "oracle_calls": result.oracle_calls}


class TestSolveTracing:
    @pytest.fixture(scope="class")
    def traced(self):
        tele = Telemetry()
        game, uncertainty = _table1_inputs()
        with telemetry.use(tele):
            result = solve_cubis(game, uncertainty, num_segments=10,
                                 epsilon=1e-3)
        return tele, result

    def test_root_span_is_cubis_solve(self, traced):
        tele, result = traced
        roots = [r for r in tele.spans if r.parent_id is None]
        assert [r.name for r in roots] == ["cubis.solve"]
        root = roots[0]
        assert root.attributes["targets"] == 2
        assert root.attributes["iterations"] == result.iterations
        assert root.attributes["milp_solves"] == result.milp_solves
        assert root.attributes["worst_case_value"] == result.worst_case_value

    def test_step_spans_cover_every_oracle_call(self, traced):
        tele, result = traced
        steps = [r for r in tele.spans if r.name == "binary_search.step"]
        assert len(steps) == result.oracle_calls
        for step in steps:
            assert "c" in step.attributes
            assert isinstance(step.attributes["feasible"], bool)

    def test_oracle_spans_attribute_kind(self, traced):
        tele, _ = traced
        solves = [r for r in tele.spans
                  if r.name in ("milp.solve", "dp.solve")]
        assert solves
        for r in solves:
            kind = r.attributes["kind"]
            assert kind == "dp" or kind.split(":")[0] in ("milp", "lp")

    def test_oracle_seconds_histogram_recorded(self, traced):
        tele, _ = traced
        series = [m for m in tele.metrics
                  if m.name == "repro_oracle_seconds"]
        assert series
        solves = [r for r in tele.spans
                  if r.name in ("milp.solve", "dp.solve")]
        assert sum(h.count for h in series) == len(solves)

    def test_counters_match_result_fields(self):
        # Fresh context so the run-level counters start at zero and the
        # per-solve deltas equal the absolute values.
        tele = Telemetry()
        game, uncertainty = _table1_inputs()
        with telemetry.use(tele):
            result = solve_cubis(game, uncertainty, num_segments=10,
                                 epsilon=1e-3)
        counts = {m.name: m.value for m in tele.metrics
                  if m.kind == "counter"}
        assert counts["repro_cubis_milp_solves_total"] == result.milp_solves
        assert counts.get("repro_cubis_lp_screens_total", 0) == result.lp_solves
        assert counts.get("repro_cubis_cache_hits_total", 0) == result.cache_hits

    def test_result_fields_survive_disabled_telemetry(self):
        # The DISABLED fallback's registry is shared process-wide;
        # per-solve fields are deltas, so they must be correct without
        # any context active.
        game, uncertainty = _table1_inputs()
        r1 = solve_cubis(game, uncertainty, num_segments=10, epsilon=1e-3)
        r2 = solve_cubis(game, uncertainty, num_segments=10, epsilon=1e-3)
        assert r1.milp_solves == r2.milp_solves
        assert r1.oracle_calls == r2.oracle_calls


class TestSweepMerging:
    GRID = [{"num_targets": 3}, {"num_targets": 4}]

    def _run(self, workers):
        tele = Telemetry()
        with telemetry.use(tele):
            table = run_grid(_telemetry_trial, self.GRID, num_trials=2,
                             seed=123, workers=workers)
        return tele, table

    @staticmethod
    def _skeleton(tele):
        """Span tree minus timings and the ``workers`` attribute (both
        legitimately vary across workers settings)."""
        return [
            (r.span_id, r.parent_id, r.name, r.depth, r.status,
             tuple(sorted((k, v) for k, v in r.attributes.items()
                          if k != "workers"
                          and (not isinstance(v, float) or k == "c"))))
            for r in tele.spans
        ]

    def test_serial_and_pooled_span_trees_identical(self):
        tele1, table1 = self._run(workers=1)
        tele4, table4 = self._run(workers=4)
        assert table1.rows == table4.rows
        assert self._skeleton(tele1) == self._skeleton(tele4)

    def test_trial_spans_nested_under_run_grid(self):
        tele, _ = self._run(workers=1)
        by_name = {}
        for r in tele.spans:
            by_name.setdefault(r.name, []).append(r)
        (grid,) = by_name["sweep.run_grid"]
        trials = by_name["sweep.trial"]
        assert len(trials) == 4  # 2 cells x 2 trials
        assert all(t.parent_id == grid.span_id for t in trials)
        assert [(t.attributes["cell"], t.attributes["trial"])
                for t in trials] == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_histogram_merge_bit_identical_across_workers(self):
        def hist_snapshot(tele):
            (h,) = [m for m in tele.metrics if m.name == "test_trial_values"]
            return h.snapshot()

        tele1, _ = self._run(workers=1)
        tele4, _ = self._run(workers=4)
        assert hist_snapshot(tele1) == hist_snapshot(tele4)

    def test_counters_merge_across_workers(self):
        # These small games resolve through the LP screen, so the LP
        # counter is the one guaranteed to move.
        tele1, _ = self._run(workers=1)
        tele4, _ = self._run(workers=4)
        def lp_total(tele):
            return sum(m.value for m in tele.metrics
                       if m.name == "repro_cubis_lp_screens_total")
        assert lp_total(tele1) == lp_total(tele4) > 0

    def test_disabled_context_skips_trial_capture(self):
        table = run_grid(_telemetry_trial, self.GRID, num_trials=1, seed=9)
        assert len(table.rows) == 2  # no context: results only, no spans


class TestResilienceEmission:
    def test_event_log_emits_through_telemetry(self):
        from repro.resilience.events import SolveEventLog, StepEvent

        tele = Telemetry()
        log = SolveEventLog()
        with telemetry.use(tele):
            log.record(StepEvent(step=1, c=0.5, rung=0, oracle="milp",
                                 backend="highs", attempt=1, outcome="ok",
                                 feasible=True, wall_seconds=0.01))
            log.record(StepEvent(step=1, c=0.5, rung=1, oracle="dp",
                                 backend=None, attempt=1, outcome="error",
                                 feasible=None, wall_seconds=0.02,
                                 message="boom"))
        attempts = [r for r in tele.spans if r.name == "resilience.attempt"]
        assert len(attempts) == 2
        assert attempts[0].attributes["outcome"] == "ok"
        assert attempts[1].attributes["message"] == "boom"
        counts = {tuple(m.labels): m.value for m in tele.metrics
                  if m.name == "repro_resilience_attempts_total"}
        assert counts[(("outcome", "ok"),)] == 1
        assert counts[(("outcome", "error"),)] == 1
        # The public API is unchanged: the log still holds the events.
        assert len(log) == 2 and len(log.failures()) == 1
