"""Unit tests for repro.behavior.suqr."""

import numpy as np
import pytest

from repro.behavior.suqr import SUQR, SUQRWeights


class TestSUQRWeights:
    def test_construction(self):
        w = SUQRWeights(-2.0, 0.5, 0.4)
        assert (w.w1, w.w2, w.w3) == (-2.0, 0.5, 0.4)

    def test_positive_w1_rejected(self):
        with pytest.raises(ValueError, match="w1"):
            SUQRWeights(1.0, 0.5, 0.4)

    def test_zero_w1_allowed(self):
        assert SUQRWeights(0.0, 0.5, 0.4).w1 == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            SUQRWeights(-1.0, float("nan"), 0.4)

    def test_as_array(self):
        np.testing.assert_array_equal(
            SUQRWeights(-3.0, 0.7, 0.2).as_array(), [-3.0, 0.7, 0.2]
        )

    def test_frozen(self):
        w = SUQRWeights(-1.0, 0.5, 0.5)
        with pytest.raises(AttributeError):
            w.w1 = -2.0


class TestSUQR:
    def test_accepts_tuple_weights(self, simple_payoffs):
        model = SUQR(simple_payoffs, (-2.0, 0.5, 0.4))
        assert isinstance(model.weights, SUQRWeights)

    def test_subjective_utilities_formula(self, simple_payoffs):
        w = SUQRWeights(-2.0, 0.5, 0.4)
        model = SUQR(simple_payoffs, w)
        x = np.array([0.3, 0.1, 0.6])
        expected = (
            w.w1 * x
            + w.w2 * simple_payoffs.attacker_reward
            + w.w3 * simple_payoffs.attacker_penalty
        )
        np.testing.assert_allclose(model.subjective_utilities(x), expected)

    def test_attack_weights_exponential(self, simple_payoffs):
        model = SUQR(simple_payoffs, (-2.0, 0.5, 0.4))
        x = np.array([0.3, 0.1, 0.6])
        np.testing.assert_allclose(
            model.attack_weights(x), np.exp(model.subjective_utilities(x))
        )

    def test_paper_section3_numbers(self):
        """The paper's example: L_1(0.3) = e^{-4.1} with the lower-end
        parameters on the Table I payoffs."""
        from repro.game.payoffs import PayoffMatrix

        payoffs = PayoffMatrix(
            defender_reward=[5.0, 7.0],
            defender_penalty=[-6.0, -10.0],
            attacker_reward=[1.0, 5.0],
            attacker_penalty=[-7.0, -9.0],
        )
        model = SUQR(payoffs, (-6.0, 0.5, 0.4))
        w = model.attack_weights(np.array([0.3, 0.0]))
        assert w[0] == pytest.approx(np.exp(-4.1))

    def test_weights_decrease_with_coverage(self, simple_payoffs):
        model = SUQR(simple_payoffs, (-3.0, 0.8, 0.5))
        grid = model.weights_on_grid(np.linspace(0, 1, 9))
        assert np.all(np.diff(grid, axis=1) < 0)

    def test_zero_w1_coverage_independent(self, simple_payoffs):
        model = SUQR(simple_payoffs, (0.0, 0.8, 0.5))
        grid = model.weights_on_grid(np.linspace(0, 1, 5))
        np.testing.assert_allclose(grid, np.repeat(grid[:, :1], 5, axis=1))

    def test_grid_matches_pointwise(self, simple_payoffs):
        model = SUQR(simple_payoffs, (-2.5, 0.6, 0.3))
        pts = np.linspace(0, 1, 6)
        grid = model.weights_on_grid(pts)
        for j, p in enumerate(pts):
            np.testing.assert_allclose(grid[:, j], model.attack_weights(np.full(3, p)))

    def test_choice_probabilities_sum_to_one(self, simple_payoffs):
        model = SUQR(simple_payoffs, (-2.0, 0.5, 0.4))
        q = model.choice_probabilities(np.array([0.5, 0.2, 0.3]))
        assert q.sum() == pytest.approx(1.0)

    def test_higher_reward_attracts(self, simple_payoffs):
        """At uniform coverage, the target with the highest subjective
        utility receives the largest attack probability."""
        model = SUQR(simple_payoffs, (-2.0, 0.9, 0.1))
        x = np.full(3, 1 / 3)
        q = model.choice_probabilities(x)
        su = model.subjective_utilities(x)
        assert np.argmax(q) == np.argmax(su)
