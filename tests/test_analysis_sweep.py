"""Tests for repro.analysis.sweep."""

import numpy as np
import pytest

from repro.analysis.sweep import (
    DuplicateKeyError,
    ResultTable,
    SweepCellError,
    run_grid,
)


def _pickleable_trial(rng, trial_index, *, size):
    """Module-level trial so the process-pool tests can pickle it."""
    yield {"value": float(rng.uniform()), "draws": rng.integers(0, 10**9, size=2).tolist()}


def _brittle_trial(rng, trial_index, *, size):
    """Fails deterministically for one grid configuration."""
    if size == 3:
        raise ValueError(f"injected failure for size={size}")
    yield {"value": float(rng.uniform())}


class TestResultTable:
    def test_append_and_len(self):
        t = ResultTable()
        t.append(a=1, b=2.0)
        t.append(a=2, b=3.0)
        assert len(t) == 2
        assert t.columns == ["a", "b"]

    def test_schema_enforced(self):
        t = ResultTable()
        t.append(a=1, b=2.0)
        with pytest.raises(ValueError, match="missing.*'b'"):
            t.append(a=1, c=2.0)

    def test_column_numeric(self):
        t = ResultTable()
        t.append(v=1.5)
        t.append(v=2.5)
        np.testing.assert_array_equal(t.column("v"), [1.5, 2.5])

    def test_column_object_fallback(self):
        t = ResultTable()
        t.append(name="x")
        t.append(name="y")
        assert t.column("name").dtype == object

    def test_where(self):
        t = ResultTable()
        t.append(algo="a", v=1.0)
        t.append(algo="b", v=2.0)
        t.append(algo="a", v=3.0)
        sub = t.where(algo="a")
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.column("v"), [1.0, 3.0])

    def test_where_typo_raises(self):
        """Regression: a typo'd column used to silently match nothing."""
        t = ResultTable()
        t.append(algo="a", v=1.0)
        with pytest.raises(KeyError, match="algorithm"):
            t.where(algorithm="a")  # column is 'algo'

    def test_where_reports_known_columns(self):
        t = ResultTable()
        t.append(algo="a", v=1.0)
        with pytest.raises(KeyError, match="algo"):
            t.where(nope=1)

    def test_where_no_match_is_empty_not_error(self):
        t = ResultTable()
        t.append(algo="a", v=1.0)
        assert len(t.where(algo="zzz")) == 0

    def test_where_on_empty_table(self):
        assert len(ResultTable().where(anything=1)) == 0

    def test_group_mean(self):
        t = ResultTable()
        for size, v in [(5, 1.0), (5, 3.0), (10, 4.0)]:
            t.append(size=size, v=v)
        means = t.group_mean("size", "v")
        assert means == {5: 2.0, 10: 4.0}

    def test_group_std(self):
        t = ResultTable()
        for v in (1.0, 3.0):
            t.append(size=5, v=v)
        t.append(size=10, v=7.0)
        stds = t.group_std("size", "v")
        assert stds[5] == pytest.approx(np.std([1.0, 3.0], ddof=1))
        assert stds[10] == 0.0

    def test_empty_table(self):
        t = ResultTable()
        assert len(t) == 0 and t.columns == []


class TestRunGrid:
    @staticmethod
    def trial(rng, trial_index, *, size):
        yield {"value": float(rng.uniform()), "size_sq": size * size}

    def test_grid_times_trials(self):
        table = run_grid(self.trial, [{"size": 2}, {"size": 3}], num_trials=4, seed=0)
        assert len(table) == 8
        assert set(table.column("size").tolist()) == {2.0, 3.0}

    def test_params_merged_into_records(self):
        table = run_grid(self.trial, [{"size": 5}], num_trials=1, seed=0)
        row = table.rows[0]
        assert row["size"] == 5 and row["size_sq"] == 25
        assert row["trial"] == 0

    def test_reproducible(self):
        a = run_grid(self.trial, [{"size": 2}], num_trials=3, seed=42)
        b = run_grid(self.trial, [{"size": 2}], num_trials=3, seed=42)
        np.testing.assert_array_equal(a.column("value"), b.column("value"))

    def test_trials_get_independent_streams(self):
        table = run_grid(self.trial, [{"size": 2}], num_trials=5, seed=1)
        values = table.column("value")
        assert len(set(values.tolist())) == 5

    def test_multi_record_trials(self):
        def multi(rng, trial_index, *, size):
            for algo in ("a", "b"):
                yield {"algorithm": algo, "value": 1.0, "size_sq": size}

        table = run_grid(multi, [{"size": 2}], num_trials=2, seed=0)
        assert len(table) == 4


class TestHierarchicalSeeding:
    """Seeds spawn per configuration, then per trial — so growing the
    sweep in either direction never re-deals existing cells."""

    GRID = [{"size": 2}, {"size": 3}]

    def test_adding_trials_keeps_existing_trials(self):
        """Regression: flat spawning indexed streams by
        ``config * num_trials + trial``, so changing ``num_trials``
        re-dealt every configuration after the first."""
        one = run_grid(_pickleable_trial, self.GRID, num_trials=1, seed=7)
        three = run_grid(_pickleable_trial, self.GRID, num_trials=3, seed=7)
        kept = [row for row in three.rows if row["trial"] == 0]
        assert one.rows == kept

    def test_extending_grid_keeps_existing_configs(self):
        small = run_grid(_pickleable_trial, self.GRID[:1], num_trials=2, seed=7)
        big = run_grid(_pickleable_trial, self.GRID, num_trials=2, seed=7)
        assert small.rows == big.rows[: len(small.rows)]

    def test_configs_get_distinct_streams(self):
        table = run_grid(_pickleable_trial, self.GRID, num_trials=1, seed=7)
        assert table.rows[0]["value"] != table.rows[1]["value"]


class TestConcat:
    @staticmethod
    def _table(rows):
        t = ResultTable()
        for row in rows:
            t.append(**row)
        return t

    def test_plain_concat_preserves_order(self):
        a = self._table([{"k": 1, "v": 10.0}])
        b = self._table([{"k": 2, "v": 20.0}])
        merged = ResultTable.concat([a, b])
        assert [row["k"] for row in merged.rows] == [1, 2]

    def test_schema_mismatch_raises(self):
        a = self._table([{"k": 1, "v": 10.0}])
        b = self._table([{"k": 2, "w": 20.0}])
        with pytest.raises(ValueError, match="schema"):
            ResultTable.concat([a, b])

    def test_unknown_key_columns_raise(self):
        """Mirrors the where() contract: a typo'd key column fails loudly."""
        a = self._table([{"k": 1, "v": 10.0}])
        with pytest.raises(KeyError, match="unknown key"):
            ResultTable.concat([a], keys=("key",))

    def test_duplicate_keys_raise(self):
        a = self._table([{"k": 1, "v": 10.0}])
        b = self._table([{"k": 1, "v": 99.0}])
        with pytest.raises(DuplicateKeyError, match="duplicate"):
            ResultTable.concat([a, b], keys=("k",))

    def test_keyed_merge_sorts_deterministically(self):
        """The merged order is a function of the data, not of which
        shard finished first."""
        a = self._table([{"cell": 2, "trial": 0, "v": 1.0}])
        b = self._table([{"cell": 0, "trial": 1, "v": 2.0},
                         {"cell": 0, "trial": 0, "v": 3.0}])
        forward = ResultTable.concat([a, b], keys=("cell", "trial"))
        backward = ResultTable.concat([b, a], keys=("cell", "trial"))
        assert forward.rows == backward.rows
        assert [(r["cell"], r["trial"]) for r in forward.rows] == \
            [(0, 0), (0, 1), (2, 0)]

    def test_failures_concatenated(self):
        table = run_grid(_brittle_trial, [{"size": 3}], on_error="record")
        merged = ResultTable.concat([table, ResultTable()])
        assert len(merged.failures) == 1

    def test_empty_concat(self):
        assert len(ResultTable.concat([])) == 0

    def test_dict_roundtrip(self):
        a = self._table([{"k": 1, "v": 10.0}])
        assert ResultTable.from_dict(a.to_dict()).rows == a.rows


class TestOnError:
    GRID = [{"size": 2}, {"size": 3}, {"size": 4}]

    def test_default_raises_with_cell_context(self):
        with pytest.raises(SweepCellError, match="size.*3"):
            run_grid(_brittle_trial, self.GRID, num_trials=1, seed=0)

    def test_failure_carries_seed_path(self):
        with pytest.raises(SweepCellError) as excinfo:
            run_grid(_brittle_trial, self.GRID, num_trials=1, seed=0)
        failure = excinfo.value.failure
        assert failure.params == {"size": 3}
        assert failure.error_type == "ValueError"
        assert isinstance(failure.spawn_key, tuple) and failure.spawn_key

    def test_record_mode_isolates_the_failure(self):
        table = run_grid(_brittle_trial, self.GRID, num_trials=2, seed=0,
                         on_error="record")
        assert len(table) == 4, "both trials of sizes 2 and 4 survive"
        assert len(table.failures) == 2
        assert all(f.params == {"size": 3} for f in table.failures)

    def test_record_mode_rows_match_healthy_subgrid(self):
        """Failing cells must not perturb their siblings' streams."""
        healthy = run_grid(
            _pickleable_trial, self.GRID, num_trials=1, seed=0,
        )
        recorded = run_grid(_brittle_trial, self.GRID, num_trials=1, seed=0,
                            on_error="record")
        kept = [row["value"] for row in healthy.rows if row["size"] != 3]
        assert [row["value"] for row in recorded.rows] == kept

    def test_pool_mode_records_failures_too(self):
        table = run_grid(_brittle_trial, self.GRID, num_trials=2, seed=0,
                         on_error="record", workers=2)
        assert len(table) == 4 and len(table.failures) == 2

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_grid(_brittle_trial, self.GRID, on_error="panic")


class TestParallelRunGrid:
    GRID = [{"size": 2}, {"size": 3}]

    def test_parallel_bit_identical_to_serial(self):
        serial = run_grid(_pickleable_trial, self.GRID, num_trials=2, seed=3)
        parallel = run_grid(
            _pickleable_trial, self.GRID, num_trials=2, seed=3, workers=2
        )
        assert serial.rows == parallel.rows

    def test_workers_one_stays_in_process(self):
        serial = run_grid(_pickleable_trial, self.GRID, num_trials=1, seed=3)
        one = run_grid(_pickleable_trial, self.GRID, num_trials=1, seed=3, workers=1)
        assert serial.rows == one.rows

    def test_invalid_workers(self):
        with pytest.raises(ValueError, match="workers"):
            run_grid(_pickleable_trial, self.GRID, num_trials=1, seed=3, workers=0)
