"""Tests for repro.analysis.sweep."""

import numpy as np
import pytest

from repro.analysis.sweep import ResultTable, run_grid


class TestResultTable:
    def test_append_and_len(self):
        t = ResultTable()
        t.append(a=1, b=2.0)
        t.append(a=2, b=3.0)
        assert len(t) == 2
        assert t.columns == ["a", "b"]

    def test_schema_enforced(self):
        t = ResultTable()
        t.append(a=1, b=2.0)
        with pytest.raises(ValueError, match="missing.*'b'"):
            t.append(a=1, c=2.0)

    def test_column_numeric(self):
        t = ResultTable()
        t.append(v=1.5)
        t.append(v=2.5)
        np.testing.assert_array_equal(t.column("v"), [1.5, 2.5])

    def test_column_object_fallback(self):
        t = ResultTable()
        t.append(name="x")
        t.append(name="y")
        assert t.column("name").dtype == object

    def test_where(self):
        t = ResultTable()
        t.append(algo="a", v=1.0)
        t.append(algo="b", v=2.0)
        t.append(algo="a", v=3.0)
        sub = t.where(algo="a")
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.column("v"), [1.0, 3.0])

    def test_group_mean(self):
        t = ResultTable()
        for size, v in [(5, 1.0), (5, 3.0), (10, 4.0)]:
            t.append(size=size, v=v)
        means = t.group_mean("size", "v")
        assert means == {5: 2.0, 10: 4.0}

    def test_group_std(self):
        t = ResultTable()
        for v in (1.0, 3.0):
            t.append(size=5, v=v)
        t.append(size=10, v=7.0)
        stds = t.group_std("size", "v")
        assert stds[5] == pytest.approx(np.std([1.0, 3.0], ddof=1))
        assert stds[10] == 0.0

    def test_empty_table(self):
        t = ResultTable()
        assert len(t) == 0 and t.columns == []


class TestRunGrid:
    @staticmethod
    def trial(rng, trial_index, *, size):
        yield {"value": float(rng.uniform()), "size_sq": size * size}

    def test_grid_times_trials(self):
        table = run_grid(self.trial, [{"size": 2}, {"size": 3}], num_trials=4, seed=0)
        assert len(table) == 8
        assert set(table.column("size").tolist()) == {2.0, 3.0}

    def test_params_merged_into_records(self):
        table = run_grid(self.trial, [{"size": 5}], num_trials=1, seed=0)
        row = table.rows[0]
        assert row["size"] == 5 and row["size_sq"] == 25
        assert row["trial"] == 0

    def test_reproducible(self):
        a = run_grid(self.trial, [{"size": 2}], num_trials=3, seed=42)
        b = run_grid(self.trial, [{"size": 2}], num_trials=3, seed=42)
        np.testing.assert_array_equal(a.column("value"), b.column("value"))

    def test_trials_get_independent_streams(self):
        table = run_grid(self.trial, [{"size": 2}], num_trials=5, seed=1)
        values = table.column("value")
        assert len(set(values.tolist())) == 5

    def test_multi_record_trials(self):
        def multi(rng, trial_index, *, size):
            for algo in ("a", "b"):
                yield {"algorithm": algo, "value": 1.0, "size_sq": size}

        table = run_grid(multi, [{"size": 2}], num_trials=2, seed=0)
        assert len(table) == 4
