"""Unit tests for repro.behavior.interval_qr."""

import numpy as np
import pytest

from repro.behavior.interval_qr import IntervalQR
from repro.behavior.qr import QuantalResponse
from repro.core.cubis import solve_cubis
from repro.game.payoffs import IntervalPayoffs
from repro.game.ssg import IntervalSecurityGame


def make_payoffs():
    return IntervalPayoffs.zero_sum_midpoint(
        attacker_reward_lo=[2.0, 4.0, 1.0],
        attacker_reward_hi=[3.0, 5.0, 2.0],
        attacker_penalty_lo=[-4.0, -6.0, -2.0],
        attacker_penalty_hi=[-3.0, -5.0, -1.0],
    )


class TestIntervalQR:
    def setup_method(self):
        self.model = IntervalQR(make_payoffs(), rationality=(0.2, 0.8))

    def test_validates_as_uncertainty_model(self):
        self.model.validate()

    def test_negative_rationality_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            IntervalQR(make_payoffs(), rationality=(-0.5, 0.5))

    def test_accepts_weightbox(self):
        from repro.behavior.interval import WeightBox

        m = IntervalQR(make_payoffs(), WeightBox(0.1, 0.3))
        assert m.rationality_box.lo == 0.1

    def test_grid_matches_pointwise(self):
        pts = np.linspace(0, 1, 9)
        lo_grid = self.model.lower_on_grid(pts)
        hi_grid = self.model.upper_on_grid(pts)
        for j, p in enumerate(pts):
            x = np.full(3, p)
            np.testing.assert_allclose(lo_grid[:, j], self.model.lower(x))
            np.testing.assert_allclose(hi_grid[:, j], self.model.upper(x))

    def test_contains_all_corner_models(self, rng):
        """Random (lambda, payoff) draws stay inside the band."""
        p = make_payoffs()
        x = np.array([0.3, 0.5, 0.1])
        lo, hi = self.model.lower(x), self.model.upper(x)
        for _ in range(30):
            lam = rng.uniform(0.2, 0.8)
            reward = rng.uniform(p.attacker_reward_lo, p.attacker_reward_hi)
            penalty = rng.uniform(p.attacker_penalty_lo, p.attacker_penalty_hi)
            ua = x * penalty + (1 - x) * reward
            f = np.exp(lam * ua)
            assert np.all(f >= lo * (1 - 1e-9))
            assert np.all(f <= hi * (1 + 1e-9))

    def test_negative_utility_corner_handling(self):
        """When the attacker utility is negative (high coverage), the lower
        bound must use the *large* lambda — checks the min() corner logic."""
        model = IntervalQR(make_payoffs(), rationality=(0.5, 2.0))
        x = np.ones(3)  # full coverage: U^a = P^a < 0
        u = make_payoffs().attacker_penalty_lo
        np.testing.assert_allclose(model.lower(x), np.exp(2.0 * u))

    def test_lipschitz_bounds_valid(self):
        lips_l, lips_u = self.model.lipschitz_bounds()
        grid = np.linspace(0, 1, 201)
        lo = self.model.lower_on_grid(grid)
        hi = self.model.upper_on_grid(grid)
        dl = np.abs(np.diff(lo, axis=1)).max(axis=1) / (grid[1] - grid[0])
        du = np.abs(np.diff(hi, axis=1)).max(axis=1) / (grid[1] - grid[0])
        assert np.all(lips_l >= dl - 1e-9)
        assert np.all(lips_u >= du - 1e-9)

    def test_midpoint_model(self):
        mid = self.model.midpoint_model()
        assert isinstance(mid, QuantalResponse)
        assert mid.rationality == pytest.approx(0.5)

    def test_sample_model_in_band(self):
        x = np.array([0.2, 0.6, 0.4])
        lo, hi = self.model.lower(x), self.model.upper(x)
        for seed in range(10):
            f = self.model.sample_model(seed).attack_weights(x)
            assert np.all(f >= lo * (1 - 1e-9))
            assert np.all(f <= hi * (1 + 1e-9))

    def test_scaled_uncertainty_nests(self):
        narrower = self.model.with_scaled_uncertainty(0.5)
        x = np.array([0.3, 0.3, 0.3])
        assert np.all(narrower.lower(x) >= self.model.lower(x) - 1e-12)
        assert np.all(narrower.upper(x) <= self.model.upper(x) + 1e-12)

    def test_scaling_clips_at_zero(self):
        m = IntervalQR(make_payoffs(), rationality=(0.0, 1.0))
        wide = m.with_scaled_uncertainty(3.0)
        assert wide.rationality_box.lo == 0.0


class TestIntervalQRWithCubis:
    def test_cubis_accepts_interval_qr(self):
        payoffs = make_payoffs()
        game = IntervalSecurityGame(payoffs, num_resources=1)
        model = IntervalQR(payoffs, rationality=(0.3, 1.2))
        result = solve_cubis(game, model, num_segments=10, epsilon=0.01)
        assert game.strategy_space.contains(result.strategy, atol=1e-6)
        assert np.isfinite(result.worst_case_value)

    def test_robust_beats_uniform(self):
        from repro.core.worst_case import evaluate_worst_case

        payoffs = make_payoffs()
        game = IntervalSecurityGame(payoffs, num_resources=1)
        model = IntervalQR(payoffs, rationality=(0.3, 1.2))
        result = solve_cubis(game, model, num_segments=15, epsilon=0.005)
        uniform = evaluate_worst_case(game, model, game.strategy_space.uniform())
        assert result.worst_case_value >= uniform.value - 0.03
