"""Fleet-mode sweeps and the store-merge seams.

Covers the three contracts this layer added:

* ``run_grid(fleet=True)`` is bit-identical to the plain per-game path —
  serially, through the process pool, across shards, and across resumes
  (the shape cache is a cost knob, never an answer knob);
* ``merge-shards --into`` makes the merged store resumable, carrying
  quarantine records from any shard (regression: a cell quarantined on
  one shard used to be silently retried after a merge + resume);
* an overlapping-store merge fails with an error that names the
  offending key tuple and the source stores (regression: the old
  ``DuplicateKeyError`` named neither).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweep import ResultTable, collect_store, run_grid
from repro.cli import main
from repro.experiments.perf import _bench_trial
from repro.resilience import SweepFaultInjector
from repro.store import CellKey, CellRecord, SweepStore, SweepStoreError
from tests.test_sweep_resume import _det_trial

GRID = [
    {"num_targets": 4, "num_segments": 4, "epsilon": 0.05, "backend": "highs"},
    {"num_targets": 5, "num_segments": 4, "epsilon": 0.05, "backend": "highs"},
]


def _solve_run(**kwargs) -> ResultTable:
    return run_grid(_bench_trial, GRID, num_trials=2, seed=7, **kwargs)


def _rows_json(table: ResultTable) -> str:
    return json.dumps(table.to_dict(), sort_keys=True)


class TestFleetRunGridBitIdentity:
    def test_fleet_serial_matches_plain_serial(self):
        plain = _solve_run()
        fleet = _solve_run(fleet=True)
        assert _rows_json(fleet) == _rows_json(plain)

    def test_fleet_pooled_matches_plain_serial(self):
        plain = _solve_run()
        pooled = _solve_run(fleet=True, workers=2)
        assert _rows_json(pooled) == _rows_json(plain)

    def test_fleet_shards_merge_to_plain_result(self, tmp_path):
        plain = _solve_run()
        _solve_run(fleet=True, store=tmp_path, shard="0/2")
        _solve_run(fleet=True, store=tmp_path, shard="1/2")
        assert _rows_json(collect_store(tmp_path)) == _rows_json(plain)

    def test_fleet_resume_matches_plain(self, tmp_path):
        from repro.resilience import SimulatedKill

        plain = _solve_run()
        with pytest.raises(SimulatedKill):
            _solve_run(fleet=True, store=tmp_path,
                       faults=SweepFaultInjector(kill_after_puts=1))
        resumed = _solve_run(fleet=True, store=tmp_path, resume=True)
        assert _rows_json(resumed) == _rows_json(plain)

    @given(st.integers(0, 10**6))
    @settings(max_examples=3, deadline=None)
    def test_fleet_property_bit_identity_across_seeds(self, seed):
        grid = GRID[:1]
        plain = run_grid(_bench_trial, grid, num_trials=1, seed=seed)
        fleet = run_grid(_bench_trial, grid, num_trials=1, seed=seed,
                         fleet=True)
        assert _rows_json(fleet) == _rows_json(plain)


def _fleet_dp_trial(rng, trial_index, *, num_targets, **params):
    """A trial that solves a small DP-oracle fleet, so each cell's trace
    carries ``fleet.solve`` spans and ``fleet.dp_round`` events."""
    from repro.experiments.quality import default_uncertainty
    from repro.game.generator import random_interval_game
    from repro.solvers.fleet import solve_fleet

    games = [random_interval_game(num_targets, seed=100 * trial_index + i)
             for i in range(3)]
    uncertainties = [default_uncertainty(g.payoffs) for g in games]
    fleet = solve_fleet(games, uncertainties, num_segments=4, epsilon=0.1,
                        oracle="dp")
    return [{"value": fleet.results[0].lower_bound,
             "oracle_calls": sum(r.oracle_calls for r in fleet.results)}]


class TestFleetTraceAdoption:
    """Worker-process traces adopt into the same tree the serial run
    records — including the lockstep batcher's round events, which are
    re-emitted on the caller thread after the join."""

    GRID = [{"num_targets": 3}, {"num_targets": 4}]

    def _traced(self, **kwargs):
        from repro import telemetry
        from repro.telemetry import Telemetry, span_signature

        ctx = Telemetry()
        with telemetry.use(ctx):
            table = run_grid(_fleet_dp_trial, self.GRID, num_trials=2,
                             seed=3, fleet=True, **kwargs)
        # The root span honestly records its ``workers`` count — the one
        # attribute that *should* differ.  Everything else must match.
        sig = tuple(
            (pos, name, depth, status,
             tuple((k, v) for k, v in attrs if k != "workers"), err)
            for (pos, name, depth, status, attrs, err)
            in span_signature(ctx.spans)
        )
        # Timing histograms keep a deterministic observation *count* but
        # a wall-clock-dependent bucket spread; compare the former only.
        metrics = []
        for snap in ctx.metrics.snapshot():
            snap = dict(snap)
            if snap["type"] == "histogram":
                snap.pop("counts")
                snap.pop("sum")
            metrics.append(snap)
        return table, sig, metrics

    def test_workers4_span_tree_matches_serial(self):
        ref_table, ref_sig, ref_metrics = self._traced(workers=1)
        table, sig, metrics = self._traced(workers=4)
        assert _rows_json(table) == _rows_json(ref_table)
        assert sig == ref_sig, "adopted span tree must match serial run"
        assert metrics == ref_metrics

    def test_dp_round_events_present(self):
        _, sig, _ = self._traced(workers=1)
        round_names = [entry for entry in sig if entry[1] == "fleet.dp_round"]
        assert round_names, "lockstep rounds must appear in the span tree"


def _quarantine_run(store, *, shard=None, resume=False, quarantine_after=1):
    """A sharded run whose cell (0, 0) always crashes."""
    return run_grid(
        _det_trial, [{"size": 2}, {"size": 3}], num_trials=1, seed=5,
        store=store, shard=shard, resume=resume,
        on_error="record", quarantine_after=quarantine_after,
        faults=SweepFaultInjector(crash={(0, 0)}, crash_times=99),
    )


class TestQuarantinePersistsAcrossMerge:
    def test_merged_store_honours_shard_quarantine(self, tmp_path, capsys):
        # Shard 0 owns the poisoned cell and quarantines it; shard 1 is
        # healthy.  The merged store must carry the quarantine record.
        a, b, merged = (str(tmp_path / n) for n in ("a", "b", "merged"))
        first = _quarantine_run(a, shard="0/2")
        assert first.failures[0].quarantined
        _quarantine_run(b, shard="1/2")

        code = main(["merge-shards", "--store", a, b, "--into", merged])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 quarantined preserved" in out

        # Resume against the merged store with a *larger* attempt budget:
        # the quarantine decision still stands — the cell is never re-run
        # (the regression: without the carried record it re-crashed here).
        table = _quarantine_run(merged, resume=True, quarantine_after=3)
        assert table.failures[0].quarantined
        assert table.failures[0].attempts == 1
        manifest = SweepStore(merged).load_shard_manifests()[-1]
        assert manifest["executed"] == 0, "a quarantined cell is never re-run"

    def test_absorb_prefers_ok_over_failure(self, tmp_path):
        src, dst = SweepStore(tmp_path / "s"), SweepStore(tmp_path / "d")
        key = CellKey("deadbeef", 0, 0)
        dst.put(CellRecord(key=key, params={"size": 2}, status="ok",
                           records=[{"value": 1}]))
        src.put(CellRecord(key=key, params={"size": 2}, status="failed",
                           failure={"attempts": 5, "quarantined": True}))
        summary = dst.absorb_cells(src)
        assert summary == {"copied": 0, "kept": 1, "quarantined": 0}
        assert dst.load(key).status == "ok"

    def test_absorb_keeps_the_stronger_failure(self, tmp_path):
        src, dst = SweepStore(tmp_path / "s"), SweepStore(tmp_path / "d")
        key = CellKey("deadbeef", 0, 0)
        dst.put(CellRecord(key=key, params={}, status="failed",
                           failure={"attempts": 1, "quarantined": False}))
        src.put(CellRecord(key=key, params={}, status="failed",
                           failure={"attempts": 2, "quarantined": True}))
        dst.absorb_cells(src)
        record = dst.load(key)
        assert record.quarantined
        assert record.failure["attempts"] == 2
        # The reverse direction never un-quarantines.
        src.absorb_cells(dst)
        assert src.load(key).quarantined

    def test_absorb_refuses_foreign_sweep(self, tmp_path):
        src, dst = SweepStore(tmp_path / "s"), SweepStore(tmp_path / "d")
        src.bind("a" * 64)
        dst.bind("b" * 64)
        with pytest.raises(SweepStoreError, match="belongs to sweep"):
            dst.absorb_cells(src)

    def test_absorb_binds_fresh_destination(self, tmp_path):
        src, dst = SweepStore(tmp_path / "s"), SweepStore(tmp_path / "d")
        src.bind("a" * 64)
        dst.absorb_cells(src)
        assert dst.sweep_hash() == "a" * 64


class TestMergeShardsDuplicateDiagnostics:
    def test_overlapping_stores_error_names_key_and_sources(self, tmp_path):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        for root in (a, b):  # two full (unsharded) runs: total overlap
            run_grid(_det_trial, [{"size": 2}], num_trials=1, seed=5,
                     store=root)
        with pytest.raises(SystemExit) as excinfo:
            main(["merge-shards", "--store", a, b])
        message = str(excinfo.value)
        assert "duplicate rows" in message
        assert "'_cell': 0" in message and "'trial': 0" in message
        assert a in message and b in message
