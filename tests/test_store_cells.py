"""Tests for repro.store.cells — self-verifying cell records.

The encode/decode pair is the store's durability primitive: a decoded
record must equal what was encoded, and *any* corruption — truncation,
bit flips, a stripped envelope — must raise :class:`TornCellError`
rather than return plausible-looking data.
"""

import json

import numpy as np
import pytest

from repro.store.cells import (
    CellKey,
    CellRecord,
    TornCellError,
    decode_cell,
    encode_cell,
    plain_data,
)


class TestPlainData:
    def test_numpy_scalars_become_python(self):
        out = plain_data({"i": np.int64(3), "f": np.float64(1.5),
                          "b": np.bool_(True)})
        assert out == {"i": 3, "f": 1.5, "b": True}
        assert type(out["i"]) is int
        assert type(out["f"]) is float
        assert type(out["b"]) is bool

    def test_arrays_become_nested_lists(self):
        out = plain_data(np.array([[1, 2], [3, 4]]))
        assert out == [[1, 2], [3, 4]]
        assert type(out[0][1]) is int

    def test_tuples_become_lists(self):
        assert plain_data({"k": (1, 2)}) == {"k": [1, 2]}

    def test_roundtrip_through_json_is_identity(self):
        """The property resume bit-identity rests on: plain data compares
        equal to its JSON round trip."""
        value = plain_data({"a": np.float64(0.25), "b": (1, np.int32(2)),
                            "c": [True, None, "s"]})
        assert json.loads(json.dumps(value)) == value

    def test_plain_values_pass_through(self):
        assert plain_data("text") == "text"
        assert plain_data(None) is None


class TestCellKey:
    def test_stem_is_sortable_and_deterministic(self):
        key = CellKey("abcdef0123456789" * 4, 3, 1)
        assert key.stem == "cell-000003-abcdef012345-t0001"

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            CellKey("a" * 64, -1, 0)
        with pytest.raises(ValueError, match=">= 0"):
            CellKey("a" * 64, 0, -1)

    def test_dict_roundtrip(self):
        key = CellKey("f" * 64, 2, 5)
        assert CellKey.from_dict(key.to_dict()) == key


class TestCellRecord:
    def test_status_validated(self):
        key = CellKey("a" * 64, 0, 0)
        with pytest.raises(ValueError, match="status"):
            CellRecord(key=key, params={}, status="done")

    def test_failed_requires_failure_dict(self):
        key = CellKey("a" * 64, 0, 0)
        with pytest.raises(ValueError, match="failure"):
            CellRecord(key=key, params={}, status="failed")

    def test_quarantined_property(self):
        key = CellKey("a" * 64, 0, 0)
        ok = CellRecord(key=key, params={}, status="ok")
        assert not ok.quarantined
        failed = CellRecord(
            key=key, params={}, status="failed",
            failure={"error_type": "E", "quarantined": True},
        )
        assert failed.quarantined


def _record(**overrides):
    defaults = dict(
        key=CellKey("c" * 64, 1, 2),
        params={"size": 4, "eps": 0.1},
        status="ok",
        records=[{"value": 0.5, "draws": [1, 2], "flag": True}],
        telemetry={"spans": [], "metrics": []},
    )
    defaults.update(overrides)
    return CellRecord(**defaults)


class TestEncodeDecode:
    def test_roundtrip_is_exact(self):
        record = _record()
        decoded = decode_cell(encode_cell(record))
        assert decoded.key == record.key
        assert decoded.params == record.params
        assert decoded.status == record.status
        assert decoded.records == record.records
        assert decoded.telemetry == record.telemetry
        assert decoded.failure is None

    def test_roundtrip_normalises_numpy(self):
        record = _record(records=[{"v": np.float64(0.25), "n": np.int64(7)}])
        decoded = decode_cell(encode_cell(record))
        assert decoded.records == [{"v": 0.25, "n": 7}]

    def test_failed_record_roundtrip(self):
        failure = {"error_type": "ValueError", "error_message": "boom",
                   "attempts": 2, "quarantined": False,
                   "spawn_key": [0, 1], "traceback": "tb"}
        record = _record(status="failed", records=[], failure=failure,
                         telemetry=None)
        decoded = decode_cell(encode_cell(record))
        assert decoded.status == "failed"
        assert decoded.failure == failure

    def test_encoding_is_deterministic(self):
        assert encode_cell(_record()) == encode_cell(_record())

    def test_unserialisable_records_raise_typeerror(self):
        """Failing loudly at write time beats corrupting a resume."""
        with pytest.raises(TypeError):
            encode_cell(_record(records=[{"bad": object()}]))


class TestTornDetection:
    def test_truncation_detected_at_any_cut(self):
        data = encode_cell(_record())
        for fraction in (0.1, 0.5, 0.9):
            cut = data[: int(len(data) * fraction)]
            with pytest.raises(TornCellError):
                decode_cell(cut)

    def test_single_byte_corruption_detected(self):
        data = bytearray(encode_cell(_record()))
        # Flip a digit inside the payload (not the checksum hex itself):
        # locate the params value '4' and change it to '5'.
        index = bytes(data).index(b'"size":4') + len(b'"size":')
        data[index] = ord("5")
        with pytest.raises(TornCellError, match="checksum"):
            decode_cell(bytes(data))

    def test_missing_envelope_detected(self):
        bare = json.dumps({"payload": {"status": "ok"}}).encode()
        with pytest.raises(TornCellError, match="envelope"):
            decode_cell(bare)

    def test_non_json_detected(self):
        with pytest.raises(TornCellError, match="unparseable"):
            decode_cell(b"\x00\xff not json")

    def test_empty_file_detected(self):
        with pytest.raises(TornCellError):
            decode_cell(b"")

    def test_future_format_version_rejected(self):
        import hashlib

        payload = json.loads(encode_cell(_record()))["payload"]
        payload["format"] = 999
        body = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode()
        envelope = json.dumps(
            {"payload": payload, "sha256": hashlib.sha256(body).hexdigest()},
            sort_keys=True, separators=(",", ":"),
        ).encode()
        with pytest.raises(TornCellError, match="format"):
            decode_cell(envelope)
