"""Tests for the attacker population mixture model."""

import numpy as np
import pytest

from repro.behavior.population import PopulationModel
from repro.behavior.sampling import sample_attacker_types


@pytest.fixture
def types(small_uncertainty):
    return sample_attacker_types(small_uncertainty, 3, seed=0)


class TestPopulationModel:
    def test_uniform_default_weights(self, types):
        pop = PopulationModel(types)
        np.testing.assert_allclose(pop.mixture_weights, 1 / 3)
        assert pop.num_types == 3
        assert pop.num_targets == 4

    def test_choice_probabilities_are_mixture(self, types):
        weights = np.array([0.5, 0.3, 0.2])
        pop = PopulationModel(types, weights)
        x = np.array([0.2, 0.4, 0.1, 0.3])
        expected = sum(
            w * t.choice_probabilities(x) for w, t in zip(weights, types)
        )
        np.testing.assert_allclose(pop.choice_probabilities(x), expected)

    def test_probabilities_normalised(self, types):
        pop = PopulationModel(types)
        q = pop.choice_probabilities(np.array([0.3, 0.3, 0.2, 0.2]))
        assert q.sum() == pytest.approx(1.0)
        assert np.all(q > 0)

    def test_single_type_degenerates(self, types):
        pop = PopulationModel([types[0]])
        x = np.array([0.1, 0.2, 0.3, 0.4])
        np.testing.assert_allclose(
            pop.choice_probabilities(x), types[0].choice_probabilities(x)
        )

    def test_expected_defender_utility_mixes(self, types, small_interval_game):
        pop = PopulationModel(types)
        x = small_interval_game.strategy_space.uniform()
        ud = small_interval_game.defender_utilities(x)
        expected = np.mean([t.expected_defender_utility(ud, x) for t in types])
        assert pop.expected_defender_utility(ud, x) == pytest.approx(expected)

    def test_usable_in_worst_type_baseline(self, types, small_interval_game):
        """Populations slot into any solver that only consumes expected
        utilities."""
        from repro.baselines.worst_type import solve_worst_type

        pops = [PopulationModel(types[:2]), PopulationModel(types[1:])]
        res = solve_worst_type(small_interval_game, pops, num_starts=3, seed=1)
        assert small_interval_game.strategy_space.contains(res.strategy, atol=1e-5)

    def test_grid_tabulation_rejected(self, types):
        pop = PopulationModel(types)
        with pytest.raises(NotImplementedError, match="separable"):
            pop.weights_on_grid(np.linspace(0, 1, 5))

    def test_validation(self, types):
        with pytest.raises(ValueError, match="at least one"):
            PopulationModel([])
        with pytest.raises(ValueError, match="one mixture weight"):
            PopulationModel(types, [0.5, 0.5])
        with pytest.raises(ValueError, match="sum to"):
            PopulationModel(types, [0.5, 0.3, 0.3])

    def test_target_mismatch_rejected(self, types):
        from repro.behavior.suqr import SUQR
        from repro.game.generator import random_game

        other = random_game(7, seed=3)
        bad = SUQR(other.payoffs, (-2.0, 0.5, 0.5))
        with pytest.raises(ValueError, match="targets"):
            PopulationModel([types[0], bad])

    def test_log_likelihood_works(self, types):
        pop = PopulationModel(types)
        cov = np.tile(np.array([0.25, 0.25, 0.25, 0.25]), (3, 1))
        hits = np.array([0, 1, 2])
        ll = pop.log_likelihood(cov, hits)
        assert np.isfinite(ll) and ll < 0
