"""Tests for the price-of-robustness frontier."""

import numpy as np
import pytest

from repro.analysis.frontier import robustness_frontier


@pytest.fixture(scope="module")
def world():
    from repro.behavior.interval import IntervalSUQR
    from repro.game.payoffs import IntervalPayoffs
    from repro.game.ssg import IntervalSecurityGame

    payoffs = IntervalPayoffs.zero_sum_midpoint(
        attacker_reward_lo=np.array([2.0, 4.0, 6.0, 1.0]),
        attacker_reward_hi=np.array([4.0, 6.0, 8.0, 3.0]),
        attacker_penalty_lo=np.array([-6.0, -8.0, -4.0, -2.0]),
        attacker_penalty_hi=np.array([-4.0, -6.0, -2.0, -1.0]),
    )
    game = IntervalSecurityGame(payoffs, num_resources=1.5)
    uncertainty = IntervalSUQR(
        payoffs, w1=(-4.0, -1.0), w2=(0.6, 0.9), w3=(0.3, 0.6), convention="tight"
    )
    return game, uncertainty


@pytest.fixture(scope="module")
def traced(world):
    game, uncertainty = world
    return robustness_frontier(
        game, uncertainty, num_points=7, num_segments=12, epsilon=0.01
    )


class TestRobustnessFrontier:
    def test_endpoint_semantics(self, traced):
        assert traced.points[0].weight == 0.0
        assert traced.points[-1].weight == 1.0
        assert len(traced.points) == 7

    def test_robust_end_has_better_worst_case(self, traced):
        assert traced.points[-1].worst_case >= traced.points[0].worst_case - 0.02

    def test_midpoint_end_has_better_nominal(self, traced):
        assert traced.points[0].midpoint_value >= traced.points[-1].midpoint_value - 0.02

    def test_price_and_value_consistent(self, traced):
        assert traced.price_of_robustness() == pytest.approx(
            traced.points[0].midpoint_value - traced.points[-1].midpoint_value
        )
        assert traced.value_of_robustness() == pytest.approx(
            traced.points[-1].worst_case - traced.points[0].worst_case
        )

    def test_all_strategies_feasible(self, world, traced):
        game, _ = world
        for p in traced.points:
            assert game.strategy_space.contains(p.strategy, atol=1e-6)

    def test_knee_on_curve(self, traced):
        knee = traced.knee()
        assert any(p is knee for p in traced.points)
        score = knee.worst_case + knee.midpoint_value
        for p in traced.points:
            assert score >= p.worst_case + p.midpoint_value - 1e-12

    def test_accessor_shapes(self, traced):
        assert traced.weights().shape == (7,)
        assert traced.worst_cases().shape == (7,)
        assert traced.midpoint_values().shape == (7,)

    def test_num_points_validation(self, world):
        game, uncertainty = world
        with pytest.raises(ValueError, match="num_points"):
            robustness_frontier(game, uncertainty, num_points=1)
