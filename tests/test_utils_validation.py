"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_finite_array,
    check_in_closed_interval,
    check_int_at_least,
    check_interval_pair,
    check_positive,
    check_probability_vector,
    check_shape_match,
)


class TestCheckFiniteArray:
    def test_accepts_lists(self):
        arr = check_finite_array([1, 2, 3], "x")
        assert arr.dtype == np.float64
        np.testing.assert_array_equal(arr, [1.0, 2.0, 3.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_finite_array([1.0, np.nan], "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_finite_array([np.inf], "x")

    def test_ndim_enforced(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_finite_array([[1.0, 2.0]], "x", ndim=1)

    def test_ndim_accepted(self):
        arr = check_finite_array([[1.0], [2.0]], "x", ndim=2)
        assert arr.shape == (2, 1)

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="my_arg"):
            check_finite_array([np.nan], "my_arg")


class TestCheckPositive:
    def test_strict_accepts_positive(self):
        assert check_positive(0.5, "x") == 0.5

    def test_strict_rejects_zero(self):
        with pytest.raises(ValueError, match="> 0"):
            check_positive(0.0, "x")

    def test_nonstrict_accepts_zero(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_nonstrict_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_positive(-1.0, "x", strict=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive(float("nan"), "x")


class TestCheckInClosedInterval:
    def test_interior(self):
        assert check_in_closed_interval(0.5, 0.0, 1.0, "x") == 0.5

    def test_endpoints(self):
        assert check_in_closed_interval(0.0, 0.0, 1.0, "x") == 0.0
        assert check_in_closed_interval(1.0, 0.0, 1.0, "x") == 1.0

    def test_slack_clips(self):
        # A value just outside (within numerical slack) is clipped in.
        v = check_in_closed_interval(1.0 + 1e-14, 0.0, 1.0, "x")
        assert v == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="lie in"):
            check_in_closed_interval(1.5, 0.0, 1.0, "x")


class TestCheckProbabilityVector:
    def test_accepts_uniform(self):
        q = check_probability_vector([0.25] * 4, "q")
        np.testing.assert_allclose(q.sum(), 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="nonnegative"):
            check_probability_vector([-0.1, 1.1], "q")

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to"):
            check_probability_vector([0.5, 0.6], "q")

    def test_custom_total(self):
        q = check_probability_vector([1.0, 1.0], "q", total=2.0)
        assert q.sum() == 2.0

    def test_clips_tiny_negatives(self):
        q = check_probability_vector([1.0 + 1e-12, -1e-12], "q")
        assert np.all(q >= 0.0)


class TestCheckIntAtLeast:
    def test_accepts_int(self):
        assert check_int_at_least(3, 1, "k") == 3

    def test_accepts_integral_float(self):
        value = check_int_at_least(4.0, 1, "k")
        assert value == 4 and isinstance(value, int)

    def test_accepts_numpy_integer(self):
        assert check_int_at_least(np.int64(2), 1, "k") == 2

    def test_rejects_below_minimum(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            check_int_at_least(0, 1, "k")

    def test_rejects_fractional(self):
        with pytest.raises(TypeError, match="k"):
            check_int_at_least(2.5, 1, "k")

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="k"):
            check_int_at_least(True, 1, "k")

    def test_rejects_string(self):
        with pytest.raises(TypeError, match="k"):
            check_int_at_least("3", 1, "k")


class TestCheckShapeMatch:
    def test_match_passes(self):
        check_shape_match(np.zeros(3), np.ones(3), "a", "b")

    def test_mismatch_raises(self):
        with pytest.raises(ValueError, match="same shape"):
            check_shape_match(np.zeros(3), np.ones(4), "a", "b")


class TestCheckIntervalPair:
    def test_valid_pair(self):
        lo, hi = check_interval_pair([1.0, 2.0], [1.5, 2.0], "w")
        np.testing.assert_array_equal(lo, [1.0, 2.0])
        np.testing.assert_array_equal(hi, [1.5, 2.0])

    def test_crossed_raises_with_index(self):
        with pytest.raises(ValueError, match="index 1"):
            check_interval_pair([1.0, 3.0], [1.5, 2.0], "w")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            check_interval_pair([1.0], [1.0, 2.0], "w")

    def test_degenerate_interval_ok(self):
        lo, hi = check_interval_pair([2.0], [2.0], "w")
        assert lo[0] == hi[0] == 2.0
