"""Tests for observation/execution noise (repro.behavior.noise) and the
unified-robustness solver options."""

import numpy as np
import pytest

from repro.behavior.noise import ObservationNoisyModel, execution_adjusted_coverage
from repro.core.cubis import solve_cubis
from repro.core.worst_case import evaluate_worst_case


class TestExecutionAdjustedCoverage:
    def test_shift_and_clip(self):
        x = np.array([0.05, 0.5, 1.0])
        np.testing.assert_allclose(
            execution_adjusted_coverage(x, 0.1), [0.0, 0.4, 0.9]
        )

    def test_zero_alpha_identity(self):
        x = np.array([0.3, 0.7])
        np.testing.assert_array_equal(execution_adjusted_coverage(x, 0.0), x)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            execution_adjusted_coverage(np.zeros(2), -0.1)


class TestObservationNoisyModel:
    def test_gamma_zero_is_identity(self, small_uncertainty):
        noisy = ObservationNoisyModel(small_uncertainty, 0.0)
        x = np.array([0.2, 0.4, 0.1, 0.05])
        np.testing.assert_allclose(noisy.lower(x), small_uncertainty.lower(x))
        np.testing.assert_allclose(noisy.upper(x), small_uncertainty.upper(x))

    def test_widens_intervals(self, small_uncertainty):
        noisy = ObservationNoisyModel(small_uncertainty, 0.15)
        x = np.array([0.3, 0.5, 0.2, 0.4])
        assert np.all(noisy.lower(x) <= small_uncertainty.lower(x) + 1e-12)
        assert np.all(noisy.upper(x) >= small_uncertainty.upper(x) - 1e-12)

    def test_still_valid_uncertainty_model(self, small_uncertainty):
        ObservationNoisyModel(small_uncertainty, 0.2).validate()

    def test_grid_matches_pointwise(self, small_uncertainty):
        noisy = ObservationNoisyModel(small_uncertainty, 0.1)
        pts = np.linspace(0, 1, 7)
        lo_grid = noisy.lower_on_grid(pts)
        for j, p in enumerate(pts):
            np.testing.assert_allclose(lo_grid[:, j], noisy.lower(np.full(4, p)))

    def test_gamma_validation(self, small_uncertainty):
        with pytest.raises(ValueError, match="gamma"):
            ObservationNoisyModel(small_uncertainty, -0.1)
        with pytest.raises(ValueError, match="gamma"):
            ObservationNoisyModel(small_uncertainty, 1.5)

    def test_larger_gamma_never_helps(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        values = [
            evaluate_worst_case(
                small_interval_game, ObservationNoisyModel(small_uncertainty, g), x
            ).value
            for g in (0.0, 0.1, 0.3)
        ]
        assert values[0] >= values[1] - 1e-9 >= values[2] - 2e-9

    def test_accessors(self, small_uncertainty):
        noisy = ObservationNoisyModel(small_uncertainty, 0.25)
        assert noisy.gamma == 0.25
        assert noisy.base is small_uncertainty
        assert noisy.num_targets == 4

    def test_lipschitz_passthrough(self, small_uncertainty):
        noisy = ObservationNoisyModel(small_uncertainty, 0.1)
        a = noisy.lipschitz_bounds()
        b = small_uncertainty.lipschitz_bounds()
        np.testing.assert_allclose(a[0], b[0])


class TestUnifiedRobustCubis:
    def test_alpha_zero_matches_base(self, small_interval_game, small_uncertainty):
        base = solve_cubis(small_interval_game, small_uncertainty, num_segments=8, epsilon=0.05)
        zero = solve_cubis(
            small_interval_game, small_uncertainty, num_segments=8, epsilon=0.05,
            execution_alpha=0.0,
        )
        assert zero.worst_case_value == pytest.approx(base.worst_case_value, abs=1e-9)

    def test_execution_noise_lowers_guarantee(self, small_interval_game, small_uncertainty):
        base = solve_cubis(small_interval_game, small_uncertainty, num_segments=10, epsilon=0.02)
        noisy = solve_cubis(
            small_interval_game, small_uncertainty, num_segments=10, epsilon=0.02,
            execution_alpha=0.15,
        )
        assert noisy.worst_case_value <= base.worst_case_value + 1e-6

    def test_guarantee_holds_under_sampled_execution(self, small_interval_game, small_uncertainty, rng):
        alpha = 0.1
        result = solve_cubis(
            small_interval_game, small_uncertainty, num_segments=10, epsilon=0.02,
            execution_alpha=alpha,
        )
        for _ in range(20):
            shortfall = rng.uniform(0.0, alpha, size=4)
            realised = np.maximum(result.strategy - shortfall, 0.0)
            v = evaluate_worst_case(small_interval_game, small_uncertainty, realised).value
            assert v >= result.worst_case_value - 1e-6

    def test_observation_noise_end_to_end(self, small_interval_game, small_uncertainty):
        noisy = ObservationNoisyModel(small_uncertainty, 0.1)
        result = solve_cubis(small_interval_game, noisy, num_segments=10, epsilon=0.02)
        base = solve_cubis(small_interval_game, small_uncertainty, num_segments=10, epsilon=0.02)
        assert result.worst_case_value <= base.worst_case_value + 0.02

    def test_negative_alpha_rejected(self, small_interval_game, small_uncertainty):
        with pytest.raises(ValueError, match="execution_alpha"):
            solve_cubis(small_interval_game, small_uncertainty, execution_alpha=-0.1)
