"""Unit tests for repro.solvers.nonconvex."""

import numpy as np
import pytest
from scipy.optimize import LinearConstraint

from repro.solvers.nonconvex import maximize_multistart


class TestMaximizeMultistart:
    def test_concave_quadratic(self):
        # max -(x-1)^2 - (y+2)^2 -> optimum (1, -2), value 0.
        obj = lambda z: -((z[0] - 1) ** 2) - (z[1] + 2) ** 2
        starts = np.array([[0.0, 0.0], [3.0, 3.0]])
        res = maximize_multistart(obj, starts, bounds=[(-5, 5), (-5, 5)])
        assert res.success
        np.testing.assert_allclose(res.x, [1.0, -2.0], atol=1e-4)
        assert res.objective == pytest.approx(0.0, abs=1e-6)

    def test_multistart_escapes_local_optimum(self):
        # f has local max near x=-1 (value 1) and global near x=2 (value 4).
        def obj(z):
            x = z[0]
            return -0.05 * (x + 1) ** 2 * (x - 2) ** 2 + np.where(x > 0.5, 4 - (x - 2) ** 2, 1 - (x + 1) ** 2)

        starts = np.array([[-1.5], [2.5]])
        res = maximize_multistart(obj, starts, bounds=[(-4, 4)])
        assert res.objective > 3.0

    def test_respects_bounds(self):
        obj = lambda z: z[0]
        res = maximize_multistart(obj, np.array([[0.0]]), bounds=[(0, 2)])
        assert res.x[0] == pytest.approx(2.0, abs=1e-6)

    def test_linear_constraint(self):
        obj = lambda z: z[0] + z[1]
        lc = LinearConstraint(np.array([[1.0, 1.0]]), -np.inf, 1.0)
        res = maximize_multistart(
            obj, np.array([[0.0, 0.0]]), constraints=[lc], bounds=[(0, 1), (0, 1)]
        )
        assert res.objective == pytest.approx(1.0, abs=1e-6)

    def test_feasibility_check_filters(self):
        obj = lambda z: z[0]
        res = maximize_multistart(
            obj,
            np.array([[0.5]]),
            bounds=[(0, 1)],
            feasibility_check=lambda z: False,
        )
        assert not res.success
        assert res.x is None

    def test_objectives_recorded_per_start(self):
        obj = lambda z: -(z[0] ** 2)
        starts = np.array([[1.0], [2.0], [3.0]])
        res = maximize_multistart(obj, starts, bounds=[(-5, 5)])
        assert res.objectives.shape == (3,)
        assert res.num_converged >= 1

    def test_jacobian_used(self):
        obj = lambda z: -(z[0] ** 2)
        jac = lambda z: np.array([-2 * z[0]])
        res = maximize_multistart(obj, np.array([[2.0]]), jac=jac, bounds=[(-5, 5)])
        assert res.x[0] == pytest.approx(0.0, abs=1e-5)

    def test_starts_shape_validated(self):
        with pytest.raises(ValueError, match="2-D"):
            maximize_multistart(lambda z: 0.0, np.zeros(3))
