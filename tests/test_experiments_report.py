"""Tests for the one-call report generator."""

import pytest

from repro.experiments.report import QUICK, ReportSettings, generate_report


@pytest.fixture(scope="module")
def tiny_report():
    settings = ReportSettings(
        table1_segments=10,
        quality_targets=(4,),
        quality_trials=1,
        runtime_targets=(4,),
        runtime_trials=1,
        interval_scales=(0.0, 1.0),
        interval_trials=1,
        ablation_segments=(2, 8),
        ablation_epsilons=(0.5, 0.05),
        ablation_trials=1,
        landscape_targets=4,
        landscape_trials=1,
        seed=7,
    )
    return generate_report(settings)


class TestGenerateReport:
    def test_all_sections_present(self, tiny_report):
        for marker in ("T1", "F1", "F2", "F3", "F4", "F5"):
            assert f"## {marker}" in tiny_report, marker

    def test_contains_tables(self, tiny_report):
        assert "Table I worked example" in tiny_report
        assert "worst-case" in tiny_report or "worst case" in tiny_report

    def test_markdown_structure(self, tiny_report):
        assert tiny_report.startswith("# Experimental report")
        assert tiny_report.count("```") % 2 == 0

    def test_quick_settings_exist(self):
        assert QUICK.quality_trials >= 1
        assert QUICK.seed == 2016
