"""ProgressBoard + ObsServer: heartbeats, endpoints, and the sweep wiring.

The acceptance-critical properties live here: ``/progress`` cell counts
are monotone while a sweep runs, the final snapshot matches the result
store's census exactly, and ``/metrics`` stays valid Prometheus text.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis.sweep import run_grid
from repro.experiments.smoke import run_smoke
from repro.obs import ObsServer, ProgressBoard, active_board, use_board
from repro.obs.progress import bump, publish
from repro.store import SweepStore
from repro.telemetry.metrics import MetricsRegistry


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.read()


class TestProgressBoard:
    def test_update_and_snapshot(self):
        board = ProgressBoard()
        board.update("sweep", total=10, done=0)
        snap = board.snapshot()
        assert snap["sections"]["sweep"]["total"] == 10
        assert snap["sections"]["sweep"]["remaining"] == 10
        assert snap["uptime_seconds"] >= 0

    def test_advance_counts_and_remaining(self):
        board = ProgressBoard()
        board.update("sweep", total=5)
        board.advance("sweep", 2)
        board.advance("sweep", 1, failed=1)
        sec = board.snapshot()["sections"]["sweep"]
        assert sec["done"] == 3
        assert sec["remaining"] == 2
        assert sec["failed"] == 1

    def test_eta_zero_when_complete(self):
        board = ProgressBoard()
        board.update("solve", total=2)
        board.advance("solve", 2)
        sec = board.snapshot()["sections"]["solve"]
        assert sec["remaining"] == 0
        assert sec["eta_seconds"] == 0.0

    def test_sections_are_independent(self):
        board = ProgressBoard()
        board.update("sweep", total=3)
        board.update("fleet", oracle="dp")
        sections = board.snapshot()["sections"]
        assert set(sections) == {"sweep", "fleet"}
        assert "total" not in sections["fleet"]

    def test_snapshot_is_json_ready(self):
        board = ProgressBoard()
        board.update("sweep", total=3, shard="0/1")
        board.advance("sweep", 1)
        json.dumps(board.snapshot())  # must not raise

    def test_thread_safety_of_advance(self):
        board = ProgressBoard()
        board.update("sweep", total=400)

        def worker():
            for _ in range(100):
                board.advance("sweep", 1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert board.snapshot()["sections"]["sweep"]["done"] == 400


class TestActiveBoard:
    def test_no_board_by_default(self):
        assert active_board() is None
        # Publishing without a board is a silent no-op.
        publish("sweep", total=1)
        bump("sweep", 1)

    def test_use_board_installs_and_restores(self):
        board = ProgressBoard()
        with use_board(board) as active:
            assert active is board
            assert active_board() is board
            publish("sweep", total=7)
            bump("sweep", 2)
        assert active_board() is None
        sec = board.snapshot()["sections"]["sweep"]
        assert sec["total"] == 7
        assert sec["done"] == 2
        assert sec["remaining"] == 5

    def test_nesting_restores_outer(self):
        outer, inner = ProgressBoard(), ProgressBoard()
        with use_board(outer):
            with use_board(inner):
                assert active_board() is inner
            assert active_board() is outer


class TestObsServer:
    def test_healthz(self):
        with ObsServer() as server:
            body = json.loads(_get(server.url + "/healthz"))
        assert body["status"] == "ok"

    def test_metrics_renders_live_registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_cells_total").inc(3)
        with ObsServer(registry=registry) as server:
            first = _get(server.url + "/metrics").decode()
            registry.counter("repro_cells_total").inc(2)
            second = _get(server.url + "/metrics").decode()
        assert "repro_cells_total 3" in first
        assert "repro_cells_total 5" in second

    def test_metrics_503_without_registry(self):
        with ObsServer() as server:
            with pytest.raises(urllib.error.HTTPError) as info:
                _get(server.url + "/metrics")
        assert info.value.code == 503

    def test_progress_prefers_attached_board(self):
        board = ProgressBoard()
        board.update("solve", step=4)
        with ObsServer(board=board) as server:
            body = json.loads(_get(server.url + "/progress"))
        assert body["sections"]["solve"]["step"] == 4

    def test_progress_falls_back_to_active_board(self):
        board = ProgressBoard()
        with ObsServer() as server, use_board(board):
            publish("fleet", done=2)
            body = json.loads(_get(server.url + "/progress"))
        assert body["sections"]["fleet"]["done"] == 2

    def test_unknown_path_is_404(self):
        with ObsServer() as server:
            with pytest.raises(urllib.error.HTTPError) as info:
                _get(server.url + "/nope")
        assert info.value.code == 404

    def test_stop_is_idempotent(self):
        server = ObsServer().start()
        server.stop()
        server.stop()

    def test_port_before_start_raises(self):
        with pytest.raises(RuntimeError):
            ObsServer().port


class TestSweepProgressWiring:
    def test_counts_monotone_and_final_matches_store(self, tmp_path):
        """Cell counts at /progress only ever grow, and the final
        snapshot's census equals the store's, cell for cell."""
        observed: list[dict] = []

        class SpyBoard(ProgressBoard):
            def advance(self, section, done=1, **fields):
                super().advance(section, done, **fields)
                observed.append(self.snapshot()["sections"][section])

        board = SpyBoard()
        store_dir = tmp_path / "store"
        with use_board(board):
            table = run_smoke(
                target_counts=(3, 4), num_trials=3, store=store_dir
            )
        assert len(observed) == 6  # one advance per terminal cell
        for before, after in zip(observed, observed[1:]):
            assert after["done"] >= before["done"]
            assert after["failed"] >= before["failed"]
            assert after["quarantined"] >= before["quarantined"]
        final = board.snapshot()["sections"]["sweep"]
        cells = list(SweepStore(store_dir).iter_cells())
        assert final["done"] == len(cells) == final["total"] == 6
        assert final["ok"] == sum(1 for c in cells if c.status == "ok")
        assert final["failed"] == sum(1 for c in cells if c.status == "failed")
        assert final["remaining"] == 0
        assert len(table.rows) > 0

    def test_failures_counted(self):
        def failing_trial(rng, trial_index, **params):
            raise RuntimeError("boom")

        board = ProgressBoard()
        with use_board(board):
            table = run_grid(
                failing_trial, [{"x": 1}, {"x": 2}], num_trials=1,
                seed=0, on_error="record",
            )
        sec = board.snapshot()["sections"]["sweep"]
        assert sec["done"] == 2
        assert sec["failed"] == 2
        assert sec["ok"] == 0
        assert len(table.failures) == 2

    def test_resumed_cells_counted(self, tmp_path):
        store_dir = tmp_path / "store"
        run_smoke(target_counts=(3,), num_trials=2, store=store_dir)
        board = ProgressBoard()
        with use_board(board):
            run_smoke(
                target_counts=(3,), num_trials=2,
                store=store_dir, resume=True,
            )
        sec = board.snapshot()["sections"]["sweep"]
        assert sec["done"] == 2
        assert sec["resumed"] == 2

    def test_run_grid_without_board_is_unaffected(self):
        # No board active: the sweep must neither crash nor record.
        table = run_smoke(target_counts=(3,), num_trials=1)
        assert len(table.rows) == 1
        assert active_board() is None


class TestSolveProgressWiring:
    def test_bracket_published(self):
        from repro.core.cubis import solve_cubis
        from repro.experiments.quality import default_uncertainty
        from repro.game.generator import random_interval_game

        game = random_interval_game(4, seed=11)
        board = ProgressBoard()
        with use_board(board):
            result = solve_cubis(
                game, default_uncertainty(game.payoffs),
                num_segments=6, epsilon=0.05,
            )
        sec = board.snapshot()["sections"]["solve"]
        assert sec["step"] >= 1
        # The published bracket is the raw candidate bracket; the final
        # result may tighten its lower bound further via certificate
        # levels, but never escape what was published.
        assert sec["bracket_lo"] <= sec["bracket_hi"]
        assert result.lower_bound >= sec["bracket_lo"] - 1e-9
        assert result.upper_bound <= sec["bracket_hi"] + 1e-9
        assert sec["bracket_width"] == pytest.approx(
            sec["bracket_hi"] - sec["bracket_lo"]
        )


class TestFleetProgressWiring:
    def test_games_and_shape_stats_published(self):
        from repro.experiments.quality import default_uncertainty
        from repro.game.generator import random_interval_game
        from repro.solvers.fleet import solve_fleet

        games = [random_interval_game(4, seed=s) for s in (1, 2, 3)]
        uncertainties = [default_uncertainty(g.payoffs) for g in games]
        board = ProgressBoard()
        with use_board(board):
            fleet = solve_fleet(
                games, uncertainties, num_segments=6, epsilon=0.05
            )
        sec = board.snapshot()["sections"]["fleet"]
        assert sec["done"] == len(fleet.results) == 3
        assert sec["total"] == 3
        assert sec["shape_hits"] == fleet.shape_stats["hits"]
        assert sec["shape_misses"] == fleet.shape_stats["misses"]
        assert sec["continuation_carried"] == 2
