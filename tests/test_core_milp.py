"""Unit tests for the CUBIS MILP builder (repro.core.milp).

Validates the MILP against a direct evaluation of the piecewise-linearised
G: the solver's optimal objective must equal max over a fine grid of
strategies of G_bar(x, beta*(x, c)) on small games, and the solution must
satisfy all the structural invariants (fill order, v semantics, budget).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dual import beta_star
from repro.core.milp import CubisMilpSkeleton, build_cubis_milp
from repro.game.constraints import CoverageConstraints
from repro.solvers.milp_backend import solve_milp
from repro.solvers.piecewise import SegmentGrid


def build_small(c, k=5, equality=False):
    """A 2-target instance with hand-set grids."""
    grid = SegmentGrid(k)
    bp = grid.breakpoints
    rd = np.array([4.0, 6.0])
    pd = np.array([-5.0, -7.0])
    ud = np.outer(rd, bp) + np.outer(pd, 1 - bp)
    lo = np.exp(np.stack([-2.0 * bp + 0.5, -2.0 * bp + 1.0]))
    hi = np.exp(np.stack([-1.0 * bp + 1.5, -1.0 * bp + 2.0]))
    model = build_cubis_milp(ud, lo, hi, 1.0, c, grid, equality_resources=equality)
    return model, (rd, pd, lo, hi, grid)


def g_bar_direct(x, c, rd, pd, lo_grid, hi_grid, grid):
    """Direct evaluation of the piecewise-linearised G at strategy x."""
    ud_bp = np.outer(rd, grid.breakpoints) + np.outer(pd, 1 - grid.breakpoints)
    f1 = lo_grid * (ud_bp - c)
    f2 = hi_grid * (ud_bp - c)
    f1_x = grid.interpolate(f1, x)
    f2_x = grid.interpolate(f2, x)
    # f1 - f2 = (L - U)(U^d - c) = (U - L)(c - U^d), so the product variable
    # is v = max(0, f1 - f2) (Proposition 3's beta folded in).
    v = np.maximum(0.0, f1_x - f2_x)
    return float(f1_x.sum() - v.sum())


class TestBuildCubisMilp:
    def test_variable_counts(self):
        model, _ = build_small(c=0.0, k=5)
        t, k = 2, 5
        assert model.problem.num_variables == t * k + t + t + t * (k - 1)
        assert model.problem.num_integer == t + t * (k - 1)

    def test_single_segment_has_no_h(self):
        model, _ = build_small(c=0.0, k=1)
        assert model.problem.num_integer == 2  # only the q binaries

    def test_shape_validation(self):
        grid = SegmentGrid(4)
        with pytest.raises(ValueError, match="shape"):
            build_cubis_milp(np.zeros((2, 3)), np.ones((2, 5)), np.ones((2, 5)), 1.0, 0.0, grid)
        with pytest.raises(ValueError, match="match"):
            build_cubis_milp(np.zeros((2, 5)), np.ones((3, 5)), np.ones((3, 5)), 1.0, 0.0, grid)

    def test_solution_respects_budget(self):
        model, _ = build_small(c=-1.0)
        res = solve_milp(model.problem)
        assert res.optimal
        x = model.strategy_from_solution(res.x)
        assert x.sum() <= 1.0 + 1e-7

    def test_equality_budget(self):
        model, _ = build_small(c=-1.0, equality=True)
        res = solve_milp(model.problem)
        assert res.optimal
        x = model.strategy_from_solution(res.x)
        assert x.sum() == pytest.approx(1.0, abs=1e-7)

    def test_fill_order_respected(self):
        model, (rd, pd, lo, hi, grid) = build_small(c=-1.0)
        res = solve_milp(model.problem)
        xik = res.x[model.layout["x"]].reshape(2, grid.num_segments)
        assert grid.is_fill_ordered(xik, atol=1e-6)

    def test_v_equals_positive_part(self):
        """At the optimum v_i = max(0, (f2 - f1)(x_i)) (Proposition 3)."""
        model, (rd, pd, lo, hi, grid) = build_small(c=0.5)
        res = solve_milp(model.problem)
        x = model.strategy_from_solution(res.x)
        v = res.x[model.layout["v"]]
        ud_bp = np.outer(rd, grid.breakpoints) + np.outer(pd, 1 - grid.breakpoints)
        f1 = lo * (ud_bp - 0.5)
        f2 = hi * (ud_bp - 0.5)
        expected = np.maximum(0.0, grid.interpolate(f1, x) - grid.interpolate(f2, x))
        np.testing.assert_allclose(v, expected, atol=1e-5)

    def test_objective_matches_direct_evaluation(self):
        model, (rd, pd, lo, hi, grid) = build_small(c=-0.5)
        res = solve_milp(model.problem)
        x = model.strategy_from_solution(res.x)
        g_bar = model.g_bar_from_objective(res.objective)
        direct = g_bar_direct(x, -0.5, rd, pd, lo, hi, grid)
        assert g_bar == pytest.approx(direct, abs=1e-6)

    @pytest.mark.parametrize("c", [-3.0, -1.0, 0.0, 1.0, 2.5])
    def test_milp_optimum_beats_grid_search(self, c):
        """The MILP optimum must dominate G_bar at every grid strategy."""
        model, (rd, pd, lo, hi, grid) = build_small(c=c, k=5)
        res = solve_milp(model.problem)
        best = model.g_bar_from_objective(res.objective)
        for x1 in np.linspace(0, 1, 21):
            x = np.array([x1, min(1.0, 1.0 - x1)])
            if x.sum() > 1.0 + 1e-9:
                continue
            assert best >= g_bar_direct(x, c, rd, pd, lo, hi, grid) - 1e-6

    def test_milp_optimum_attained_by_its_strategy(self):
        """g_bar(x*) from the solver equals the direct evaluation at x* —
        i.e. the auxiliary variables encode exactly the PWL functions."""
        for c in (-2.0, 0.0, 1.5):
            model, (rd, pd, lo, hi, grid) = build_small(c=c, k=8)
            res = solve_milp(model.problem)
            x = model.strategy_from_solution(res.x)
            assert model.g_bar_from_objective(res.objective) == pytest.approx(
                g_bar_direct(x, c, rd, pd, lo, hi, grid), abs=1e-6
            )

    def test_backends_agree(self):
        model, _ = build_small(c=0.0, k=3)
        highs = solve_milp(model.problem, backend="highs")
        bnb = solve_milp(model.problem, backend="bnb")
        assert highs.objective == pytest.approx(bnb.objective, abs=1e-6)

    def test_metadata_fields(self):
        model, _ = build_small(c=1.25)
        assert model.c == 1.25
        assert model.grid.num_segments == 5
        assert np.isfinite(model.f1_constant)


def small_data(k=5):
    """The raw arrays behind :func:`build_small`."""
    grid = SegmentGrid(k)
    bp = grid.breakpoints
    rd = np.array([4.0, 6.0])
    pd = np.array([-5.0, -7.0])
    ud = np.outer(rd, bp) + np.outer(pd, 1 - bp)
    lo = np.exp(np.stack([-2.0 * bp + 0.5, -2.0 * bp + 1.0]))
    hi = np.exp(np.stack([-1.0 * bp + 1.5, -1.0 * bp + 2.0]))
    return ud, lo, hi, grid, rd, pd


def assert_models_identical(patched, fresh):
    """Bit-identical comparison of two CubisMilp instances."""
    a, b = patched.problem, fresh.problem
    np.testing.assert_array_equal(a.c, b.c)
    np.testing.assert_array_equal(a.b_ub, b.b_ub)
    np.testing.assert_array_equal(a.lb, b.lb)
    np.testing.assert_array_equal(a.ub, b.ub)
    np.testing.assert_array_equal(a.integrality, b.integrality)
    for mat_a, mat_b in [(a.A_ub, b.A_ub), (a.A_eq, b.A_eq)]:
        if mat_a is None or mat_b is None:
            assert mat_a is mat_b is None
            continue
        if hasattr(mat_a, "tocsr"):
            ca, cb = mat_a.tocsr(), mat_b.tocsr()
            np.testing.assert_array_equal(ca.indptr, cb.indptr)
            np.testing.assert_array_equal(ca.indices, cb.indices)
            np.testing.assert_array_equal(ca.data, cb.data)
        else:
            np.testing.assert_array_equal(np.asarray(mat_a), np.asarray(mat_b))
    if b.b_eq is not None or a.b_eq is not None:
        np.testing.assert_array_equal(a.b_eq, b.b_eq)
    assert patched.f1_constant == fresh.f1_constant
    assert patched.c == fresh.c


class TestCubisMilpSkeleton:
    """patch(c) must reproduce a from-scratch build bit for bit."""

    @pytest.mark.parametrize("c", [-3.0, -0.5, 0.0, 1.0, 2.5])
    def test_patch_matches_fresh_build(self, c):
        ud, lo, hi, grid, *_ = small_data()
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        fresh = build_cubis_milp(ud, lo, hi, 1.0, c, grid)
        assert_models_identical(skeleton.patch(c), fresh)

    def test_patch_is_stateless(self):
        """Re-patching an earlier candidate leaves no residue from the
        candidates patched in between."""
        ud, lo, hi, grid, *_ = small_data()
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        skeleton.patch(-2.0)
        skeleton.patch(3.0)
        again = skeleton.patch(0.75)
        assert_models_identical(again, build_cubis_milp(ud, lo, hi, 1.0, 0.75, grid))

    def test_patch_with_equality_budget(self):
        ud, lo, hi, grid, *_ = small_data()
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid, equality_resources=True)
        fresh = build_cubis_milp(ud, lo, hi, 1.0, -1.0, grid, equality_resources=True)
        assert_models_identical(skeleton.patch(-1.0), fresh)

    def test_patch_with_coverage_constraints(self):
        ud, lo, hi, grid, *_ = small_data()
        extra = CoverageConstraints(np.array([[1.0, 0.0]]), np.array([0.4]))
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid, coverage_constraints=extra)
        fresh = build_cubis_milp(
            ud, lo, hi, 1.0, 0.5, grid, coverage_constraints=extra
        )
        assert_models_identical(skeleton.patch(0.5), fresh)

    @pytest.mark.parametrize("c", [-2.0, 0.0, 1.5])
    def test_patched_solution_matches_fresh(self, c):
        ud, lo, hi, grid, *_ = small_data()
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        res_patched = solve_milp(skeleton.patch(c).problem)
        res_fresh = solve_milp(build_cubis_milp(ud, lo, hi, 1.0, c, grid).problem)
        assert res_patched.optimal and res_fresh.optimal
        assert res_patched.objective == res_fresh.objective


def apply_patch(skeleton, model, patch):
    """Apply a SkeletonPatch in place, exactly as MilpSession does."""
    problem = model.problem
    slots = skeleton.entry_data_slots
    problem.A_ub.data[slots[patch.vals_index]] = patch.vals
    problem.b_ub[patch.rhs_index] = patch.rhs
    problem.c[patch.cost_index] = patch.cost
    problem.ub[patch.ub_index] = patch.ub
    return type(model)(
        problem=problem,
        layout=model.layout,
        grid=model.grid,
        f1_constant=patch.f1_constant,
        c=patch.c_new,
    )


class TestSkeletonDiff:
    """diff(c_old, c_new) applied in place must equal a fresh build bit
    for bit — the invariant the incremental MilpSession rests on."""

    @pytest.mark.parametrize("c_old,c_new", [
        (-3.0, 2.5), (0.0, 1e-9), (1.0, -1.0), (2.5, 2.5 + 1e-12),
    ])
    def test_in_place_patch_matches_fresh_build(self, c_old, c_new):
        ud, lo, hi, grid, *_ = small_data()
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        model = skeleton.patch(c_old)
        patched = apply_patch(skeleton, model, skeleton.diff(c_old, c_new))
        assert_models_identical(patched, build_cubis_milp(ud, lo, hi, 1.0, c_new, grid))

    def test_identity_diff_is_empty(self):
        ud, lo, hi, grid, *_ = small_data()
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        patch = skeleton.diff(0.75, 0.75)
        assert patch.num_updates == 0
        for arr in (patch.vals_index, patch.rhs_index, patch.cost_index, patch.ub_index):
            assert len(arr) == 0

    def test_diff_is_sparse(self):
        """The patch set is confined to the c-dependent entries — a
        strict subset of the model's coefficients."""
        ud, lo, hi, grid, *_ = small_data(k=8)
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        patch = skeleton.diff(-5.0, 5.0)
        problem = skeleton.patch(0.0).problem
        total = (
            len(problem.A_ub.data) + len(problem.b_ub)
            + len(problem.c) + len(problem.ub)
        )
        assert 0 < patch.num_updates < total

    def test_chained_diffs_leave_no_residue(self):
        """A walk c0 -> c1 -> ... -> cn of in-place patches lands on the
        same bits as jumping straight to cn."""
        ud, lo, hi, grid, *_ = small_data()
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        walk = [-2.0, 3.0, 0.75, -0.1, 0.75, 2.25]
        model = skeleton.patch(walk[0])
        for c_old, c_new in zip(walk, walk[1:]):
            model = apply_patch(skeleton, model, skeleton.diff(c_old, c_new))
        assert_models_identical(
            model, build_cubis_milp(ud, lo, hi, 1.0, walk[-1], grid)
        )

    @given(
        st.floats(-6.0, 6.0, allow_nan=False),
        st.floats(-6.0, 6.0, allow_nan=False),
        st.integers(1, 7),
    )
    @settings(max_examples=40, deadline=None)
    def test_patch_property_bit_identity(self, c_old, c_new, k):
        ud, lo, hi, grid, *_ = small_data(k)
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        model = skeleton.patch(c_old)
        patched = apply_patch(skeleton, model, skeleton.diff(c_old, c_new))
        assert_models_identical(
            patched, build_cubis_milp(ud, lo, hi, 1.0, c_new, grid)
        )

    def test_entry_data_slots_is_inverse_permutation(self):
        ud, lo, hi, grid, *_ = small_data()
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        slots = skeleton.entry_data_slots
        order = np.sort(slots)
        np.testing.assert_array_equal(order, np.arange(len(slots)))


class TestRebind:
    """rebind() views share one assembled structure across games; every
    tabulation and cross-game patch must still equal a fresh build bit
    for bit — the invariant the fleet's shape cache rests on."""

    def _sibling_data(self, k=5):
        ud, lo, hi, grid, *_ = small_data(k)
        rng = np.random.default_rng(7)
        ud2 = ud * rng.uniform(0.5, 1.5, size=ud.shape)
        lo2 = lo * rng.uniform(0.9, 1.1, size=lo.shape)
        hi2 = hi * rng.uniform(1.0, 1.2, size=hi.shape)
        return ud, lo, hi, ud2, lo2, hi2, grid

    def test_rebound_patch_matches_fresh_build(self):
        ud, lo, hi, ud2, lo2, hi2, grid = self._sibling_data()
        proto = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        view = proto.rebind(ud2, lo2, hi2)
        for c in (-2.0, 0.0, 1.25):
            assert_models_identical(
                view.patch(c), build_cubis_milp(ud2, lo2, hi2, 1.0, c, grid)
            )

    def test_rebind_shares_structure_both_ways(self):
        ud, lo, hi, ud2, lo2, hi2, grid = self._sibling_data()
        proto = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        view = proto.rebind(ud2, lo2, hi2)
        assert view.shares_structure(proto)
        assert proto.shares_structure(view)
        assert view.shares_structure(view)

    def test_independent_builds_do_not_share_structure(self):
        ud, lo, hi, grid, *_ = small_data()
        a = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        b = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        assert not a.shares_structure(b)

    def test_rebind_rejects_shape_mismatch(self):
        ud, lo, hi, grid, *_ = small_data()
        proto = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        with pytest.raises(ValueError):
            proto.rebind(ud[:, :-1], lo[:, :-1], hi[:, :-1])

    def test_diff_from_requires_shared_structure(self):
        ud, lo, hi, grid, *_ = small_data()
        a = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        b = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        with pytest.raises(ValueError, match="structure-sharing"):
            b.diff_from(a, 0.0, 1.0)

    def test_cross_game_diff_matches_fresh_build(self):
        # Patch a model built from game A's tabulation at c_old into
        # game B's tabulation at c_new — the retarget fast path.
        ud, lo, hi, ud2, lo2, hi2, grid = self._sibling_data()
        proto = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        view = proto.rebind(ud2, lo2, hi2)
        model = proto.patch(-1.0)
        patched = apply_patch(proto, model, view.diff_from(proto, -1.0, 0.5))
        assert_models_identical(
            patched, build_cubis_milp(ud2, lo2, hi2, 1.0, 0.5, grid)
        )

    @given(
        st.floats(-4.0, 4.0, allow_nan=False),
        st.floats(-4.0, 4.0, allow_nan=False),
        st.integers(1, 6),
        st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_cross_game_patch_property_bit_identity(self, c_old, c_new, k, seed):
        ud, lo, hi, grid, *_ = small_data(k)
        rng = np.random.default_rng(seed)
        ud2 = ud * rng.uniform(0.5, 1.5, size=ud.shape)
        lo2 = lo * rng.uniform(0.8, 1.2, size=lo.shape)
        hi2 = hi * rng.uniform(1.0, 1.3, size=hi.shape)
        proto = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        view = proto.rebind(ud2, lo2, hi2)
        model = proto.patch(c_old)
        patched = apply_patch(proto, model, view.diff_from(proto, c_old, c_new))
        assert_models_identical(
            patched, build_cubis_milp(ud2, lo2, hi2, 1.0, c_new, grid)
        )

    def test_sibling_views_share_entry_data_slots(self):
        ud, lo, hi, ud2, lo2, hi2, grid = self._sibling_data()
        proto = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        view = proto.rebind(ud2, lo2, hi2)
        assert view.entry_data_slots is proto.entry_data_slots


class TestStrategyCertificate:
    def certificate_for(self, x, k=5):
        ud, lo, hi, grid, rd, pd = small_data(k)
        skeleton = CubisMilpSkeleton(ud, lo, hi, 1.0, grid)
        return skeleton.certificate(np.asarray(x)), (rd, pd, lo, hi, grid)

    @pytest.mark.parametrize("c", [-3.0, -1.0, 0.0, 0.8, 2.5])
    def test_g_bar_matches_direct_evaluation(self, c):
        for x in ([0.0, 0.0], [0.3, 0.7], [0.55, 0.45], [1.0, 0.0]):
            cert, (rd, pd, lo, hi, grid) = self.certificate_for(x)
            assert cert.g_bar(c) == pytest.approx(
                g_bar_direct(np.asarray(x), c, rd, pd, lo, hi, grid), abs=1e-9
            )

    def test_g_bar_nonincreasing_in_c(self):
        cert, _ = self.certificate_for([0.4, 0.6])
        values = [cert.g_bar(c) for c in np.linspace(-4.0, 4.0, 41)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_guaranteed_level_is_a_crossing_point(self):
        cert, _ = self.certificate_for([0.4, 0.6])
        lo_c, hi_c = -5.0, 5.0
        level = cert.guaranteed_level(lo_c, hi_c)
        assert np.isfinite(level)
        assert cert.g_bar(level) >= 0.0
        if level < hi_c:
            assert cert.g_bar(level + 1e-9) < 0.0

    def test_guaranteed_level_neg_inf_when_lo_uncertified(self):
        cert, _ = self.certificate_for([0.0, 0.0])
        # Far above any achievable utility nothing certifies.
        assert cert.guaranteed_level(100.0, 200.0) == -float("inf")

    def test_guaranteed_level_clamps_to_hi(self):
        cert, _ = self.certificate_for([0.4, 0.6])
        # Far below the certified range the whole bracket is feasible.
        assert cert.guaranteed_level(-100.0, -50.0) == -50.0


class TestDriftPatch:
    """drift_patch carries a live model across an interval perturbation
    at a fixed candidate; patch_touched_targets decodes which targets the
    patch rewrites.  Both must be exact: the patched model bit-identical
    to a fresh build on the new bands, the touched set confined to the
    perturbed targets (the resolve engine's sparse re-entry invariant)."""

    def _bands(self, t=4, k=6, seed=3):
        grid = SegmentGrid(k)
        bp = grid.breakpoints
        rng = np.random.default_rng(seed)
        rd = rng.uniform(1.0, 6.0, size=t)
        pd = -rng.uniform(1.0, 6.0, size=t)
        ud = np.outer(rd, bp) + np.outer(pd, 1 - bp)
        slope = rng.uniform(0.5, 2.0, size=(t, 1))
        lo = np.exp(-slope * bp + rng.uniform(0.0, 0.5, size=(t, 1)))
        hi = np.exp(-0.5 * slope * bp + rng.uniform(0.6, 1.0, size=(t, 1)))
        return ud, lo, hi, grid

    def _shrunk(self, lo, hi, targets, amount=0.02):
        lo2, hi2 = lo.copy(), hi.copy()
        lo2[list(targets)] *= 1.0 + amount
        hi2[list(targets)] *= 1.0 - amount
        return lo2, hi2

    def test_drift_patch_matches_fresh_build(self):
        ud, lo, hi, grid = self._bands()
        proto = CubisMilpSkeleton(ud, lo, hi, 1.5, grid)
        lo2, hi2 = self._shrunk(lo, hi, range(len(ud)))
        sibling = proto.rebind(ud, lo2, hi2)
        for c in (-2.0, 0.0, 1.25):
            model = proto.patch(c)
            patched = apply_patch(proto, model, sibling.drift_patch(proto, c))
            assert_models_identical(
                patched, build_cubis_milp(ud, lo2, hi2, 1.5, c, grid)
            )

    def test_no_drift_patch_is_empty(self):
        ud, lo, hi, grid = self._bands()
        proto = CubisMilpSkeleton(ud, lo, hi, 1.5, grid)
        sibling = proto.rebind(ud, lo.copy(), hi.copy())
        patch = sibling.drift_patch(proto, 0.5)
        assert patch.num_updates == 0
        assert sibling.patch_touched_targets(patch).size == 0

    def test_single_target_drift_touches_only_that_target(self):
        ud, lo, hi, grid = self._bands()
        proto = CubisMilpSkeleton(ud, lo, hi, 1.5, grid)
        for target in range(len(ud)):
            lo2, hi2 = self._shrunk(lo, hi, [target])
            sibling = proto.rebind(ud, lo2, hi2)
            patch = sibling.drift_patch(proto, 0.5)
            assert patch.num_updates > 0
            np.testing.assert_array_equal(
                sibling.patch_touched_targets(patch), [target]
            )

    def test_full_drift_touches_every_target(self):
        ud, lo, hi, grid = self._bands()
        proto = CubisMilpSkeleton(ud, lo, hi, 1.5, grid)
        lo2, hi2 = self._shrunk(lo, hi, range(len(ud)))
        sibling = proto.rebind(ud, lo2, hi2)
        patch = sibling.drift_patch(proto, 0.5)
        np.testing.assert_array_equal(
            sibling.patch_touched_targets(patch), np.arange(len(ud))
        )

    @given(
        st.integers(2, 5),
        st.integers(1, 6),
        st.integers(0, 10**6),
        st.floats(-3.0, 3.0, allow_nan=False),
        st.floats(0.005, 0.2, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_drift_patch_property(self, t, k, seed, c, amount):
        """Any perturbed subset: the patch is bit-exact against a fresh
        build and its touched set is exactly the perturbed targets."""
        ud, lo, hi, grid = self._bands(t=t, k=k, seed=seed)
        rng = np.random.default_rng(seed + 1)
        subset = np.flatnonzero(rng.uniform(size=t) < 0.5)
        if subset.size == 0:
            subset = np.array([rng.integers(t)])
        proto = CubisMilpSkeleton(ud, lo, hi, 1.5, grid)
        lo2, hi2 = self._shrunk(lo, hi, subset, amount=amount)
        sibling = proto.rebind(ud, lo2, hi2)
        patch = sibling.drift_patch(proto, c)
        model = proto.patch(c)
        patched = apply_patch(proto, model, patch)
        assert_models_identical(
            patched, build_cubis_milp(ud, lo2, hi2, 1.5, c, grid)
        )
        np.testing.assert_array_equal(
            sibling.patch_touched_targets(patch), np.sort(subset)
        )
