"""Unit tests for repro.solvers.session (MilpSession / SessionPool)."""

import numpy as np
import pytest

from repro import telemetry
from repro.core.milp import CubisMilpSkeleton, build_cubis_milp
from repro.solvers.milp_backend import solve_milp
from repro.solvers.session import MilpSession, SessionPool
from tests.test_core_milp import assert_models_identical, small_data


def make_skeleton(k=5):
    ud, lo, hi, grid, *_ = small_data(k)
    return CubisMilpSkeleton(ud, lo, hi, 1.0, grid), (ud, lo, hi, grid)


class TestMilpSession:
    def test_first_prepare_is_fresh_build(self):
        skeleton, _ = make_skeleton()
        session = MilpSession(skeleton)
        assert not session.live
        model = session.prepare(0.5)
        assert session.live
        assert session.fresh_builds == 1
        assert session.patches_applied == 0
        assert model.c == 0.5

    def test_patched_model_is_bit_identical_to_fresh(self):
        skeleton, (ud, lo, hi, grid) = make_skeleton()
        session = MilpSession(skeleton)
        session.prepare(-2.0)
        patched = session.prepare(1.25)
        assert session.patches_applied == 1
        assert_models_identical(
            patched, build_cubis_milp(ud, lo, hi, 1.0, 1.25, grid)
        )

    def test_long_walk_stays_bit_identical(self):
        skeleton, (ud, lo, hi, grid) = make_skeleton()
        session = MilpSession(skeleton)
        for c in [-3.0, 2.0, -0.5, 0.0, 0.7, -1.1, 2.9]:
            model = session.prepare(c)
            assert_models_identical(
                model, build_cubis_milp(ud, lo, hi, 1.0, c, grid)
            )
        assert session.fresh_builds == 1
        assert session.patches_applied == 6

    def test_same_candidate_is_noop(self):
        skeleton, _ = make_skeleton()
        session = MilpSession(skeleton)
        first = session.prepare(0.5)
        second = session.prepare(0.5)
        assert second is first
        assert session.patches_applied == 0
        assert session.last_patch_updates == 0

    def test_solve_requires_prepare(self):
        skeleton, _ = make_skeleton()
        with pytest.raises(RuntimeError, match="prepare"):
            MilpSession(skeleton).solve()

    @pytest.mark.parametrize("backend", ["highs", "bnb"])
    def test_session_solves_match_fresh_solves(self, backend):
        skeleton, (ud, lo, hi, grid) = make_skeleton()
        session = MilpSession(skeleton, backend=backend)
        for c in [-1.0, 0.5, 1.5]:
            session.prepare(c)
            got = session.solve()
            want = solve_milp(
                build_cubis_milp(ud, lo, hi, 1.0, c, grid).problem,
                backend=backend,
            )
            assert got.optimal and want.optimal
            assert got.objective == pytest.approx(want.objective, abs=1e-9)
        assert session.solves == 3

    def test_incumbent_carried_between_solves(self):
        skeleton, _ = make_skeleton()
        session = MilpSession(skeleton, backend="bnb")
        session.prepare(0.0)
        first = session.solve()
        assert first.optimal
        assert session._incumbent is not None
        np.testing.assert_array_equal(session._incumbent, first.x)

    def test_invalidate_drops_model_and_counts_fallback(self):
        skeleton, _ = make_skeleton()
        session = MilpSession(skeleton)
        session.invalidate()  # nothing live yet: not a fallback
        assert session.fallbacks == 0
        session.prepare(0.5)
        session.invalidate()
        assert session.fallbacks == 1
        assert not session.live
        # Next prepare is a fresh build again, and correct.
        model = session.prepare(1.0)
        assert session.fresh_builds == 2
        assert model.c == 1.0

    def test_invalidate_drops_incumbent(self):
        skeleton, _ = make_skeleton()
        session = MilpSession(skeleton, backend="bnb")
        session.prepare(0.0)
        session.solve()
        session.invalidate()
        assert session._incumbent is None

    def test_prepare_emits_patch_spans(self):
        skeleton, _ = make_skeleton()
        session = MilpSession(skeleton)
        tele = telemetry.Telemetry()
        with telemetry.use(tele):
            session.prepare(0.0)
            session.prepare(1.0)
            session.prepare(1.0)
        spans = [s for s in tele.spans if s.name == "milp.patch"]
        assert [s.attributes["mode"] for s in spans] == [
            "fresh-build", "patch", "noop",
        ]
        assert spans[1].attributes["updates"] > 0

    def test_stats_roundtrip(self):
        skeleton, _ = make_skeleton()
        session = MilpSession(skeleton)
        session.prepare(0.0)
        session.prepare(1.0)
        session.solve()
        stats = session.stats()
        assert stats == {
            "fresh_builds": 1, "patches_applied": 1, "solves": 1, "fallbacks": 0,
            "retargets": 0,
        }


class TestRetarget:
    def test_retarget_sibling_patches_instead_of_rebuilding(self):
        skeleton, (ud, lo, hi, grid) = make_skeleton()
        sibling = skeleton.rebind(ud * 1.5, lo, hi)
        session = MilpSession(skeleton)
        session.prepare(0.5)
        session.retarget(sibling)
        model = session.prepare(1.0)
        assert session.retargets == 1
        assert session.fresh_builds == 1  # the live model survived
        assert session.patches_applied == 1
        assert_models_identical(
            model, build_cubis_milp(ud * 1.5, lo, hi, 1.0, 1.0, grid)
        )

    def test_retarget_chain_stays_bit_identical(self):
        skeleton, (ud, lo, hi, grid) = make_skeleton()
        session = MilpSession(skeleton)
        session.prepare(-1.0)
        for scale, c in [(1.5, 0.0), (0.5, 0.7), (2.0, -0.3)]:
            sibling = skeleton.rebind(ud * scale, lo, hi)
            session.retarget(sibling)
            model = session.prepare(c)
            assert_models_identical(
                model, build_cubis_milp(ud * scale, lo, hi, 1.0, c, grid)
            )
        assert session.fresh_builds == 1
        assert session.retargets == 3

    def test_retarget_same_skeleton_is_noop(self):
        skeleton, _ = make_skeleton()
        session = MilpSession(skeleton)
        session.prepare(0.5)
        session.retarget(skeleton)
        assert session.retargets == 0
        assert session.prepare(0.5) is session._model

    def test_retarget_structurally_different_drops_model(self):
        skeleton, _ = make_skeleton(k=5)
        other, _ = make_skeleton(k=7)
        session = MilpSession(skeleton)
        session.prepare(0.5)
        session.retarget(other)
        assert not session.live
        session.prepare(1.0)
        assert session.fresh_builds == 2

    def test_retarget_drops_incumbent_by_default(self):
        skeleton, (ud, lo, hi, _) = make_skeleton()
        sibling = skeleton.rebind(ud * 1.1, lo, hi)
        session = MilpSession(skeleton, backend="bnb")
        session.prepare(0.0)
        session.solve()
        assert session._incumbent is not None
        session.retarget(sibling)
        assert session._incumbent is None

    def test_carry_incumbent_keeps_warm_start_across_retargets(self):
        skeleton, (ud, lo, hi, _) = make_skeleton()
        sibling = skeleton.rebind(ud * 1.1, lo, hi)
        session = MilpSession(skeleton, backend="bnb", carry_incumbent=True)
        session.prepare(0.0)
        first = session.solve()
        session.retarget(sibling)
        np.testing.assert_array_equal(session._incumbent, first.x)

    def test_retarget_patch_span_mode(self):
        skeleton, (ud, lo, hi, _) = make_skeleton()
        sibling = skeleton.rebind(ud * 2.0, lo, hi)
        session = MilpSession(skeleton)
        tele = telemetry.Telemetry()
        with telemetry.use(tele):
            session.prepare(0.0)
            session.retarget(sibling)
            session.prepare(0.0)
        spans = [s for s in tele.spans if s.name == "milp.patch"]
        assert [s.attributes["mode"] for s in spans] == [
            "fresh-build", "retarget-patch",
        ]

    def test_unretargeted_empty_session_refuses_prepare(self):
        session = MilpSession(None)
        with pytest.raises(RuntimeError, match="retarget"):
            session.prepare(0.5)


class TestSessionPool:
    def test_size_validation(self):
        skeleton, _ = make_skeleton()
        with pytest.raises(ValueError, match="size"):
            SessionPool(skeleton, 0)

    def test_map_preserves_item_order(self):
        skeleton, _ = make_skeleton()
        with SessionPool(skeleton, 3) as pool:
            out = pool.map(lambda session, item: item * 10, [3, 1, 2, 5, 4])
        assert out == [30, 10, 20, 50, 40]

    def test_map_assigns_distinct_sessions_per_chunk(self):
        skeleton, _ = make_skeleton()
        with SessionPool(skeleton, 3) as pool:
            seen = pool.map(lambda session, item: id(session), [0, 1, 2])
        assert len(set(seen)) == 3

    def test_chunking_reuses_sessions_beyond_size(self):
        skeleton, _ = make_skeleton()
        with SessionPool(skeleton, 2) as pool:
            out = pool.map(lambda session, item: item + 1, list(range(7)))
        assert out == list(range(1, 8))

    def test_concurrent_session_solves_match_sequential(self):
        skeleton, (ud, lo, hi, grid) = make_skeleton()
        cs = [-1.5, 0.0, 1.0]

        def solve_at(session, c):
            session.prepare(c)
            return session.solve().objective

        with SessionPool(skeleton, 3) as pool:
            concurrent = pool.map(solve_at, cs)
        sequential = [
            solve_milp(build_cubis_milp(ud, lo, hi, 1.0, c, grid).problem).objective
            for c in cs
        ]
        assert concurrent == pytest.approx(sequential, abs=1e-9)

    def test_worker_telemetry_is_disabled(self):
        skeleton, _ = make_skeleton()
        tele = telemetry.Telemetry()
        with telemetry.use(tele):
            with SessionPool(skeleton, 2) as pool:
                enabled = pool.map(
                    lambda session, item: telemetry.current().enabled, [0, 1]
                )
        assert enabled == [False, False]
        assert not [s for s in tele.spans if s.name == "milp.patch"]

    def test_error_propagates_after_chunk_drains(self):
        skeleton, _ = make_skeleton()
        done = []

        def work(session, item):
            if item == 1:
                raise RuntimeError("boom on item 1")
            done.append(item)
            return item

        with SessionPool(skeleton, 3) as pool:
            with pytest.raises(RuntimeError, match="boom on item 1"):
                pool.map(work, [0, 1, 2])
        # The chunk's other tasks were allowed to finish.
        assert set(done) == {0, 2}

    def test_close_is_idempotent_and_sessions_stay_usable(self):
        skeleton, _ = make_skeleton()
        pool = SessionPool(skeleton, 2)
        pool.map(lambda session, item: item, [1, 2])
        pool.close()
        pool.close()
        session = pool.sessions[0]
        model = session.prepare(0.5)
        assert model.c == 0.5

    def test_stats_sums_sessions(self):
        skeleton, _ = make_skeleton()
        with SessionPool(skeleton, 2) as pool:
            pool.map(lambda session, item: session.prepare(item) and None, [0.1, 0.2])
        stats = pool.stats()
        assert stats["fresh_builds"] == 2
        assert stats["solves"] == 0

    def test_worker_metrics_merge_into_parent_registry(self):
        # Regression: map() used to run each task under a throwaway
        # disabled context whose MetricsRegistry was discarded with it,
        # so the workers' repro_oracle_seconds observations (one per
        # speculative probe solve) never reached the caller's registry.
        skeleton, _ = make_skeleton()
        tele = telemetry.Telemetry()

        def solve_at(session, c):
            session.prepare(c)
            return session.solve().objective

        with telemetry.use(tele):
            with SessionPool(skeleton, 3) as pool:
                pool.map(solve_at, [-1.0, 0.0, 1.0])
        hist = tele.metrics.histogram("repro_oracle_seconds", kind="milp:highs")
        assert hist.count == 3

    def test_failing_task_still_contributes_metrics(self):
        skeleton, _ = make_skeleton()
        tele = telemetry.Telemetry()

        def work(session, c):
            session.prepare(c)
            session.solve()
            if c == 0.0:
                raise RuntimeError("boom after solving")
            return c

        with telemetry.use(tele):
            with SessionPool(skeleton, 2) as pool:
                with pytest.raises(RuntimeError, match="boom"):
                    pool.map(work, [-1.0, 0.0])
        hist = tele.metrics.histogram("repro_oracle_seconds", kind="milp:highs")
        assert hist.count == 2
