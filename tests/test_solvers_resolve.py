"""Tests for the standing-solve drift re-entry engine (repro.solvers.resolve).

The load-bearing property is **bit-identity**: ``resolve(handle, drifted)``
must return exactly what a cold ``solve_cubis`` returns for the same
post-drift intervals and the same warm-start hints — the standing session,
the sparse cross-drift patch, and the shape-cache lease are pure
machinery, never semantics.  The Hypothesis property drives that across
shrink, widen, and mixed drifts on quantised random games; the widening
regression pins that a stale lower bound is never offered after a widen.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.behavior.interval import (
    BandScaledModel,
    FunctionIntervalModel,
    IntervalSUQR,
)
from repro.core.cubis import solve_cubis
from repro.game.payoffs import IntervalPayoffs
from repro.game.ssg import IntervalSecurityGame
from repro.resilience.certificate import theorem_slack
from repro.solvers.resolve import classify_drift, resolve, start_resolve
from tests import fixtures_games


def per_target_scaled(base, factors):
    """Scale each target's band towards its geometric centre by its own
    factor — the per-target generalisation of :class:`BandScaledModel`,
    used here to manufacture mixed drifts (some targets shrink, some
    widen)."""
    f = np.asarray(factors, dtype=np.float64).reshape(-1, 1)

    def lower_fn(pts):
        low = base.lower_on_grid(pts)
        high = base.upper_on_grid(pts)
        centre = np.sqrt(low * high)
        return low ** f * centre ** (1.0 - f)

    def upper_fn(pts):
        low = base.lower_on_grid(pts)
        high = base.upper_on_grid(pts)
        centre = np.sqrt(low * high)
        return high ** f * centre ** (1.0 - f)

    return FunctionIntervalModel(base.num_targets, lower_fn, upper_fn)


def assert_bit_identical(handle, outcome, drifted):
    """The identity contract: the resolve answer equals a cold
    ``solve_cubis`` on the post-drift intervals with the same hints."""
    cold = solve_cubis(
        handle.game,
        drifted,
        session="incremental",
        warm_start=outcome.warm_start,
        num_segments=handle.options["num_segments"],
        epsilon=handle.options["epsilon"],
        backend=handle.options["backend"],
    )
    assert np.array_equal(outcome.result.strategy, cold.strategy)
    assert outcome.result.worst_case_value == cold.worst_case_value
    assert outcome.result.lower_bound == cold.lower_bound
    assert outcome.result.upper_bound == cold.upper_bound


class TestClassifyDrift:
    def grids(self, t=3, k=4):
        rng = np.random.default_rng(0)
        lower = rng.uniform(0.1, 0.4, size=(t, k))
        upper = lower + rng.uniform(0.1, 0.4, size=(t, k))
        return lower, upper

    def test_identical_grids_are_none(self):
        lower, upper = self.grids()
        report = classify_drift(lower, upper, lower.copy(), upper.copy())
        assert report.kind == "none"
        assert report.changed_targets == 0
        assert report.max_rel_change == 0.0
        assert report.bracket_reusable

    def test_pointwise_nesting_is_shrink(self):
        lower, upper = self.grids()
        report = classify_drift(lower, upper, lower * 1.05, upper * 0.95)
        assert report.kind == "shrink"
        assert report.changed_targets == 3
        assert report.max_rel_change == pytest.approx(0.05)
        assert report.bracket_reusable

    def test_pointwise_expansion_is_widen(self):
        lower, upper = self.grids()
        report = classify_drift(lower, upper, lower * 0.9, upper * 1.1)
        assert report.kind == "widen"
        assert not report.bracket_reusable

    def test_opposing_targets_are_mixed(self):
        lower, upper = self.grids()
        new_lower, new_upper = lower.copy(), upper.copy()
        new_lower[0] *= 1.05  # target 0 shrinks
        new_upper[1] *= 1.05  # target 1 widens
        report = classify_drift(lower, upper, new_lower, new_upper)
        assert report.kind == "mixed"
        assert report.changed_targets == 2
        assert not report.bracket_reusable

    def test_single_moved_target_counted_once(self):
        lower, upper = self.grids()
        new_upper = upper.copy()
        new_upper[2, 1] *= 0.99
        report = classify_drift(lower, upper, lower, new_upper)
        assert report.kind == "shrink"
        assert report.changed_targets == 1

    def test_shape_mismatch_rejected(self):
        lower, upper = self.grids()
        with pytest.raises(ValueError, match="share one shape"):
            classify_drift(lower, upper, lower[:2], upper[:2])


class TestStartResolve:
    def test_unsupported_option_rejected(self):
        game = fixtures_games.small_interval_game()
        uncertainty = fixtures_games.small_suqr(game)
        with pytest.raises(ValueError, match="unsupported standing-solve"):
            start_resolve(game, uncertainty, oracle="dp")
        with pytest.raises(ValueError, match="unsupported standing-solve"):
            start_resolve(game, uncertainty, coverage_constraints=())

    def test_initial_solve_matches_cold(self):
        game = fixtures_games.small_interval_game()
        uncertainty = fixtures_games.small_suqr(game)
        handle = start_resolve(game, uncertainty, num_segments=8)
        cold = solve_cubis(game, uncertainty, num_segments=8)
        assert handle.result.worst_case_value == pytest.approx(
            cold.worst_case_value, abs=1e-9
        )
        stats = handle.stats()
        assert stats["resolves"] == 0
        assert set(stats) >= {"warm_hits", "bracket_reuses", "patches",
                              "session", "shape_cache"}


class TestResolveDrifts:
    @pytest.fixture()
    def standing(self):
        game = fixtures_games.small_interval_game()
        uncertainty = fixtures_games.small_suqr(game)
        handle = start_resolve(game, uncertainty, num_segments=8)
        return game, uncertainty, handle

    def test_no_drift_reuses_bracket(self, standing):
        _, uncertainty, handle = standing
        outcome = resolve(handle, BandScaledModel(uncertainty, 1.0))
        assert outcome.drift.kind == "none"
        assert outcome.bracket_reused
        assert outcome.warm_start.bracket == (
            outcome.prior_lower_bound, outcome.prior_upper_bound
        )

    def test_shrink_reuses_bracket_and_matches_cold(self, standing):
        _, uncertainty, handle = standing
        drifted = BandScaledModel(uncertainty, 0.9)
        outcome = resolve(handle, drifted)
        assert outcome.drift.kind == "shrink"
        assert outcome.bracket_reused
        assert outcome.warm_start.bracket is not None
        assert_bit_identical(handle, outcome, drifted)
        assert handle.result is outcome.result
        assert handle.uncertainty is drifted
        assert handle.resolves == 1
        assert handle.bracket_reuses == 1

    def test_widening_never_offers_stale_bracket(self, standing):
        """Regression: after a widen the prior lower bound may exceed the
        new optimum — the warm start must drop the bracket entirely and
        carry only the screened prior strategy."""
        _, uncertainty, handle = standing
        drifted = BandScaledModel(uncertainty, 1.2)
        outcome = resolve(handle, drifted)
        assert outcome.drift.kind == "widen"
        assert not outcome.bracket_reused
        assert outcome.warm_start.bracket is None
        assert outcome.warm_start.strategies
        assert handle.bracket_reuses == 0
        assert_bit_identical(handle, outcome, drifted)

    def test_mixed_drift_drops_bracket(self, standing):
        _, uncertainty, handle = standing
        drifted = per_target_scaled(uncertainty, [0.8, 1.2, 1.0, 1.0])
        outcome = resolve(handle, drifted)
        assert outcome.drift.kind == "mixed"
        assert not outcome.bracket_reused
        assert outcome.warm_start.bracket is None
        assert_bit_identical(handle, outcome, drifted)

    def test_chained_shrinks_are_monotone_within_slack(self, standing):
        """The exact robust value is monotone non-decreasing under
        shrink; each step's answer may only dip by the Theorem 1
        suboptimality slack of the K-segment approximant."""
        game, uncertainty, handle = standing
        slack = theorem_slack(game, handle.options["epsilon"],
                              handle.options["num_segments"])
        previous = float(handle.result.worst_case_value)
        for factor in (0.9, 0.81, 0.729):
            outcome = resolve(handle, BandScaledModel(uncertainty, factor))
            assert outcome.drift.kind == "shrink"
            value = float(outcome.result.worst_case_value)
            assert value >= previous - slack
            previous = value
        assert handle.resolves == 3
        assert handle.bracket_reuses == 3


# The 1e-3 coefficient quantisation shared with tests/test_verify_properties.py.
pos = st.floats(0.5, 5, allow_nan=False).map(lambda v: round(v, 3))
halfwidth = st.floats(0.05, 0.75, allow_nan=False).map(lambda v: round(v, 3))


@st.composite
def drifted_instances(draw, min_targets=2, max_targets=4):
    """A quantised random interval game, its SUQR model, and a drifted
    variant of one of the three kinds."""
    n = draw(st.integers(min_targets, max_targets))
    rewards = np.array([draw(pos) for _ in range(n)])
    penalties = -np.array([draw(pos) for _ in range(n)])
    h = draw(halfwidth)
    payoffs = IntervalPayoffs.zero_sum_midpoint(
        attacker_reward_lo=rewards,
        attacker_reward_hi=rewards + 2 * h,
        attacker_penalty_lo=penalties - 2 * h,
        attacker_penalty_hi=penalties,
    )
    game = IntervalSecurityGame(payoffs, num_resources=1)
    uncertainty = IntervalSUQR(
        game.payoffs,
        w1=(-4.0, -1.0),
        w2=(0.6, 0.9),
        w3=(0.3, 0.6),
        convention="tight",
    )
    kind = draw(st.sampled_from(["shrink", "widen", "mixed"]))
    if kind == "shrink":
        factor = draw(st.floats(0.5, 0.95).map(lambda v: round(v, 3)))
        drifted = BandScaledModel(uncertainty, factor)
    elif kind == "widen":
        factor = draw(st.floats(1.05, 1.3).map(lambda v: round(v, 3)))
        drifted = BandScaledModel(uncertainty, factor)
    else:
        factors = [
            draw(st.sampled_from([0.8, 0.9, 1.0, 1.1, 1.2])) for _ in range(n)
        ]
        drifted = per_target_scaled(uncertainty, factors)
    return game, uncertainty, drifted


class TestBitIdentityProperty:
    @given(drifted_instances())
    @settings(max_examples=8, deadline=None)  # cost-bound: 3 solves/example
    def test_resolve_equals_cold_solve_on_post_drift_intervals(self, inst):
        game, uncertainty, drifted = inst
        handle = start_resolve(game, uncertainty, num_segments=6)
        outcome = resolve(handle, drifted)
        assert_bit_identical(handle, outcome, drifted)
        # The classification feeding the warm start is consistent with
        # what was offered: only none/shrink may carry a bracket.
        assert (outcome.warm_start.bracket is not None) == (
            outcome.drift.kind in ("none", "shrink")
        )
