"""Tests for the midpoint (non-robust) baseline."""

import numpy as np
import pytest

from repro.baselines.midpoint import MidpointBoundsModel, solve_midpoint
from repro.behavior.interval import FunctionIntervalModel
from repro.core.cubis import solve_cubis


class TestMidpointBoundsModel:
    def test_weights_are_interval_midpoints(self, small_uncertainty):
        model = MidpointBoundsModel(small_uncertainty)
        x = np.full(4, 0.3)
        expected = 0.5 * (small_uncertainty.lower(x) + small_uncertainty.upper(x))
        np.testing.assert_allclose(model.attack_weights(x), expected)

    def test_grid_consistency(self, small_uncertainty):
        model = MidpointBoundsModel(small_uncertainty)
        pts = np.linspace(0, 1, 6)
        grid = model.weights_on_grid(pts)
        for j, p in enumerate(pts):
            np.testing.assert_allclose(grid[:, j], model.attack_weights(np.full(4, p)))

    def test_num_targets(self, small_uncertainty):
        assert MidpointBoundsModel(small_uncertainty).num_targets == 4


class TestSolveMidpoint:
    def test_parameters_mode(self, small_interval_game, small_uncertainty):
        res = solve_midpoint(
            small_interval_game, small_uncertainty, num_segments=12, epsilon=0.01
        )
        assert small_interval_game.strategy_space.contains(res.strategy, atol=1e-6)
        # The nominal belief is always at least the worst case.
        assert res.nominal_value >= res.worst_case_value - 1e-6

    def test_bounds_mode(self, small_interval_game, small_uncertainty):
        res = solve_midpoint(
            small_interval_game,
            small_uncertainty,
            midpoint="bounds",
            num_segments=12,
            epsilon=0.01,
        )
        assert small_interval_game.strategy_space.contains(res.strategy, atol=1e-6)

    def test_invalid_mode(self, small_interval_game, small_uncertainty):
        with pytest.raises(ValueError, match="midpoint"):
            solve_midpoint(small_interval_game, small_uncertainty, midpoint="mean")

    def test_parameters_mode_needs_midpoint_model(self, small_interval_game):
        t = small_interval_game.num_targets
        consts = np.linspace(1.0, 2.0, t)
        generic = FunctionIntervalModel(
            t,
            lambda p: np.exp(-2.0 * p[None, :]) * consts[:, None],
            lambda p: np.exp(-1.0 * p[None, :]) * (consts[:, None] + 1.0),
        )
        with pytest.raises(ValueError, match="midpoint_model"):
            solve_midpoint(small_interval_game, generic, midpoint="parameters")
        # but bounds mode works for generic models
        res = solve_midpoint(
            small_interval_game, generic, midpoint="bounds", num_segments=8, epsilon=0.05
        )
        assert np.isfinite(res.worst_case_value)

    def test_cubis_dominates_midpoint_in_worst_case(self, small_interval_game, small_uncertainty):
        """The paper's headline comparison on a fixture game."""
        robust = solve_cubis(
            small_interval_game, small_uncertainty, num_segments=15, epsilon=0.005
        )
        midpoint = solve_midpoint(
            small_interval_game, small_uncertainty, num_segments=15, epsilon=0.005
        )
        assert robust.worst_case_value >= midpoint.worst_case_value - 0.02
