"""Unit and property tests for repro.game.strategy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.game.strategy import StrategySpace


class TestConstruction:
    def test_valid(self):
        s = StrategySpace(5, 2)
        assert s.num_targets == 5 and s.num_resources == 2.0

    def test_fractional_resources(self):
        s = StrategySpace(4, 1.5)
        assert s.num_resources == 1.5

    def test_zero_resources_rejected(self):
        with pytest.raises(ValueError, match="num_resources"):
            StrategySpace(3, 0)

    def test_too_many_resources_rejected(self):
        with pytest.raises(ValueError, match="num_resources"):
            StrategySpace(3, 4)

    def test_resources_equal_targets_allowed(self):
        s = StrategySpace(3, 3)
        np.testing.assert_allclose(s.uniform(), np.ones(3))

    def test_no_targets_rejected(self):
        with pytest.raises(ValueError, match="num_targets"):
            StrategySpace(0, 0.5)


class TestContainsValidate:
    def test_uniform_contained(self):
        s = StrategySpace(4, 2)
        assert s.contains(s.uniform())

    def test_wrong_sum(self):
        s = StrategySpace(4, 2)
        assert not s.contains(np.full(4, 0.4))

    def test_out_of_box(self):
        s = StrategySpace(2, 1.5)
        assert not s.contains(np.array([1.6, -0.1]))

    def test_wrong_shape(self):
        s = StrategySpace(3, 1)
        assert not s.contains(np.array([0.5, 0.5]))

    def test_validate_returns_array(self):
        s = StrategySpace(2, 1)
        out = s.validate([0.4, 0.6])
        assert isinstance(out, np.ndarray)

    def test_validate_raises(self):
        s = StrategySpace(2, 1)
        with pytest.raises(ValueError, match="feasible"):
            s.validate([0.9, 0.9])

    def test_validate_shape_error(self):
        s = StrategySpace(3, 1)
        with pytest.raises(ValueError, match="shape"):
            s.validate([0.5, 0.5])


class TestProjection:
    def test_feasible_point_fixed(self):
        s = StrategySpace(3, 1)
        x = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(s.project(x), x, atol=1e-8)

    def test_projection_feasible(self, rng):
        s = StrategySpace(6, 2)
        for _ in range(20):
            v = rng.normal(size=6) * 3
            p = s.project(v)
            assert s.contains(p, atol=1e-6)

    def test_projection_is_nearest_on_simple_case(self):
        # Project (2, 0): caps at 1, remainder must go to the other slot.
        s = StrategySpace(2, 1.5)
        p = s.project(np.array([2.0, 0.0]))
        np.testing.assert_allclose(p, [1.0, 0.5], atol=1e-6)

    def test_projection_idempotent(self, rng):
        s = StrategySpace(5, 2)
        v = rng.normal(size=5)
        p1 = s.project(v)
        p2 = s.project(p1)
        np.testing.assert_allclose(p1, p2, atol=1e-6)

    def test_projection_shape_error(self):
        s = StrategySpace(3, 1)
        with pytest.raises(ValueError, match="shape"):
            s.project([0.5, 0.5])

    @given(st.lists(st.floats(-5, 5), min_size=4, max_size=4))
    def test_projection_always_feasible(self, values):
        s = StrategySpace(4, 1.5)
        p = s.project(np.array(values))
        assert s.contains(p, atol=1e-5)

    @given(st.lists(st.floats(-3, 3), min_size=3, max_size=3), st.integers(0, 10**6))
    @settings(max_examples=30)
    def test_projection_no_closer_feasible_point(self, values, seed):
        """The projection is at least as close as random feasible points."""
        s = StrategySpace(3, 1)
        v = np.array(values)
        p = s.project(v)
        dist_p = np.linalg.norm(v - p)
        other = s.random(seed)
        assert dist_p <= np.linalg.norm(v - other) + 1e-6


class TestSampling:
    def test_uniform_strategy(self):
        s = StrategySpace(4, 2)
        np.testing.assert_allclose(s.uniform(), np.full(4, 0.5))

    def test_random_feasible(self):
        s = StrategySpace(5, 2)
        for seed in range(10):
            assert s.contains(s.random(seed), atol=1e-6)

    def test_random_deterministic(self):
        s = StrategySpace(5, 2)
        np.testing.assert_array_equal(s.random(3), s.random(3))

    def test_random_batch_shape(self):
        s = StrategySpace(4, 1)
        batch = s.random_batch(7, seed=0)
        assert batch.shape == (7, 4)
        for row in batch:
            assert s.contains(row, atol=1e-6)

    def test_vertices_sample_integral_resources(self):
        s = StrategySpace(5, 2)
        verts = s.vertices_sample(8, seed=0)
        assert verts.shape == (8, 5)
        for row in verts:
            assert s.contains(row, atol=1e-9)
            assert set(np.round(row, 9)) <= {0.0, 1.0}

    def test_vertices_sample_fractional_resources(self):
        s = StrategySpace(4, 1.5)
        verts = s.vertices_sample(5, seed=1)
        for row in verts:
            assert s.contains(row, atol=1e-9)
            # one full target and one half target
            assert np.isclose(sorted(row)[-1], 1.0)
            assert np.isclose(sorted(row)[-2], 0.5)
