"""Tests for repro.analysis.sensitivity."""

import numpy as np
import pytest

from repro.analysis.sensitivity import binding_targets, uncertainty_contributions
from repro.core.worst_case import worst_case_response


class TestUncertaintyContributions:
    def test_nonnegative(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        delta = uncertainty_contributions(small_interval_game, small_uncertainty, x)
        assert delta.shape == (4,)
        assert np.all(delta >= 0.0)

    def test_zero_for_degenerate_intervals(self, small_interval_game):
        """With zero-width intervals nothing can be recovered."""
        from repro.behavior.interval import FunctionIntervalModel

        consts = np.array([1.0, 2.0, 1.5, 0.5])

        def bound(p):
            return np.exp(-2.0 * p[None, :]) * consts[:, None]

        degenerate = FunctionIntervalModel(4, bound, bound)
        x = small_interval_game.strategy_space.uniform()
        delta = uncertainty_contributions(small_interval_game, degenerate, x)
        np.testing.assert_allclose(delta, 0.0, atol=1e-12)

    def test_widest_interval_contributes_on_symmetric_game(self):
        """If only one target has a (huge) interval, that target carries
        all the recoverable uncertainty."""
        from repro.behavior.interval import FunctionIntervalModel
        from repro.game.payoffs import PayoffMatrix
        from repro.game.ssg import SecurityGame

        payoffs = PayoffMatrix(
            defender_reward=[2.0, 2.0, 2.0],
            defender_penalty=[-2.0, -2.0, -2.0],
            attacker_reward=[1.0, 1.0, 1.0],
            attacker_penalty=[-1.0, -1.0, -1.0],
        )
        game = SecurityGame(payoffs, num_resources=1)

        def lower(p):
            return np.ones((3, len(p))) * np.exp(-p[None, :])

        def upper(p):
            out = np.ones((3, len(p))) * np.exp(-p[None, :])
            out[0] *= 6.0  # only target 0 is uncertain
            return out

        model = FunctionIntervalModel(3, lower, upper)
        x = np.array([0.4, 0.3, 0.3])
        delta = uncertainty_contributions(game, model, x)
        assert delta[0] > 0
        assert delta[0] >= delta[1] and delta[0] >= delta[2]

    def test_full_resolution_bounded_by_sum_of_contributions_loose(self, small_interval_game, small_uncertainty):
        """Collapsing everything recovers at least as much as the largest
        single contribution (sanity relation, not additivity)."""
        x = small_interval_game.strategy_space.uniform()
        ud = small_interval_game.defender_utilities(x)
        lo = small_uncertainty.lower(x)
        hi = small_uncertainty.upper(x)
        mid = 0.5 * (lo + hi)
        base = worst_case_response(ud, lo, hi).value
        full = worst_case_response(ud, mid, mid).value
        delta = uncertainty_contributions(small_interval_game, small_uncertainty, x)
        assert full - base >= delta.max() - 1e-9


class TestBindingTargets:
    def test_partition(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        support = binding_targets(small_interval_game, small_uncertainty, x)
        # Every target is at one of the two interval ends.
        assert np.all(support.at_upper | support.at_lower)
        assert not np.any(support.at_upper & support.at_lower)

    def test_worst_target_is_attacked_and_bad(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        support = binding_targets(small_interval_game, small_uncertainty, x)
        ud = small_interval_game.defender_utilities(x)
        assert support.attack_distribution[support.worst_target] > 1e-6
        attacked = support.attack_distribution > 1e-6
        assert ud[support.worst_target] == pytest.approx(ud[attacked].min())

    def test_upper_targets_hurt_defender(self, small_interval_game, small_uncertainty):
        """The adversary inflates attractiveness exactly on the targets
        with the *lowest* defender utility."""
        x = small_interval_game.strategy_space.uniform()
        support = binding_targets(small_interval_game, small_uncertainty, x)
        ud = small_interval_game.defender_utilities(x)
        if support.at_upper.any() and support.at_lower.any():
            assert ud[support.at_upper].max() <= ud[support.at_lower].min() + 1e-9

    def test_distribution_sums_to_one(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.random(3)
        support = binding_targets(small_interval_game, small_uncertainty, x)
        assert support.attack_distribution.sum() == pytest.approx(1.0)
