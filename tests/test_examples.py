"""The example scripts must at least parse and expose a main()."""

import ast
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=[p.name for p in EXAMPLES])
class TestExampleScripts:
    def test_parses(self, path):
        tree = ast.parse(path.read_text())
        assert tree is not None

    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    def test_defines_main(self, path):
        tree = ast.parse(path.read_text())
        names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in names


def test_expected_example_set():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "wildlife_patrol.py",
        "airport_checkpoints.py",
        "learning_intervals.py",
        "patrol_calendar.py",
        "park_graph.py",
        "custom_model.py",
    } <= names
