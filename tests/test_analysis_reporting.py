"""Tests for repro.analysis.reporting."""

from repro.analysis.reporting import format_kv, format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [["a", 1.2345], ["bb", 2.0]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.2345" in out
        assert len(lines) == 4  # header, rule, 2 rows

    def test_title(self):
        out = format_table(["x"], [[1.0]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_format(self):
        out = format_table(["x"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in out and "1.234" not in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_non_float_cells_passthrough(self):
        out = format_table(["n"], [[42]])
        assert "42" in out


class TestFormatSeries:
    def test_structure(self):
        out = format_series(
            "targets", [5, 10], {"cubis": [1.0, 2.0], "midpoint": [0.5, 1.5]}
        )
        lines = out.splitlines()
        assert "targets" in lines[0] and "cubis" in lines[0] and "midpoint" in lines[0]
        assert len(lines) == 4

    def test_values_in_rows(self):
        out = format_series("k", [2], {"gap": [0.125]})
        assert "0.125" in out

    def test_title(self):
        out = format_series("k", [1], {"s": [0.0]}, title="F1")
        assert out.splitlines()[0] == "F1"


class TestFormatKV:
    def test_pairs(self):
        out = format_kv({"alpha": 1.23456, "beta": "text"})
        assert "alpha" in out and "1.2346" in out and "text" in out

    def test_alignment(self):
        out = format_kv({"a": 1.0, "longer_key": 2.0})
        lines = out.splitlines()
        # Values start at the same column.
        assert lines[0].index("1.0") == lines[1].index("2.0")

    def test_empty(self):
        assert format_kv({}) == ""

    def test_title(self):
        out = format_kv({"a": 1.0}, title="Stats")
        assert out.splitlines()[0] == "Stats"
