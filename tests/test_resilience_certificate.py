"""Tests for the solver-independent solution certificates."""

import dataclasses

import numpy as np
import pytest

from repro.core.cubis import solve_cubis
from repro.game.constraints import CoverageConstraints
from repro.resilience.certificate import certify_result, theorem_slack


@pytest.fixture(scope="module")
def solved(request):
    from repro.behavior.interval import IntervalSUQR
    from repro.game.generator import random_interval_game

    game = random_interval_game(4, num_resources=1.5, seed=7)
    uncertainty = IntervalSUQR(
        game.payoffs, w1=(-4.0, -1.0), w2=(0.6, 0.9), w3=(0.3, 0.6),
        convention="tight",
    )
    result = solve_cubis(game, uncertainty, num_segments=10, epsilon=1e-3)
    return game, uncertainty, result


class TestValidSolves:
    def test_clean_solve_certifies(self, solved):
        game, uncertainty, result = solved
        certificate = certify_result(game, uncertainty, result)
        assert certificate.valid, certificate.summary()
        assert certificate.failures() == ()

    def test_summary_mentions_every_check(self, solved):
        game, uncertainty, result = solved
        certificate = certify_result(game, uncertainty, result)
        summary = certificate.summary()
        assert "VALID" in summary
        for name in (
            "strategy_box", "budget", "bracket", "value_in_bracket",
            "reported_value", "adversary_consistent", "oracle_feasibility",
        ):
            assert name in summary

    def test_dp_oracle_solve_certifies(self, solved):
        game, uncertainty, _ = solved
        result = solve_cubis(
            game, uncertainty, num_segments=10, epsilon=1e-3, oracle="dp"
        )
        assert certify_result(game, uncertainty, result).valid

    def test_theorem_slack_scales(self, solved):
        game, _, _ = solved
        assert theorem_slack(game, 0.1, 10) > theorem_slack(game, 0.1, 100)
        assert theorem_slack(game, 0.5, 10) == pytest.approx(
            theorem_slack(game, 0.1, 10) + 0.4
        )

    def test_execution_alpha_path(self, solved):
        game, uncertainty, _ = solved
        result = solve_cubis(
            game, uncertainty, num_segments=10, epsilon=1e-3,
            execution_alpha=0.05,
        )
        certificate = certify_result(
            game, uncertainty, result, execution_alpha=0.05
        )
        assert certificate.valid, certificate.summary()

    def test_coverage_constraints_path(self, solved):
        game, uncertainty, _ = solved
        constraints = CoverageConstraints(
            matrix=np.eye(game.num_targets), rhs=np.full(game.num_targets, 0.9)
        )
        result = solve_cubis(
            game, uncertainty, num_segments=10, epsilon=1e-3,
            coverage_constraints=constraints,
        )
        certificate = certify_result(
            game, uncertainty, result, coverage_constraints=constraints
        )
        assert certificate.valid, certificate.summary()


class TestCorruptedResults:
    def test_budget_violation_rejected(self, solved):
        game, uncertainty, result = solved
        corrupted = dataclasses.replace(
            result, strategy=np.ones(game.num_targets)
        )
        certificate = certify_result(game, uncertainty, corrupted)
        assert not certificate.valid
        assert "budget" in certificate.failures()

    def test_box_violation_rejected(self, solved):
        game, uncertainty, result = solved
        bad = result.strategy.copy()
        bad[0] = 1.7
        certificate = certify_result(
            game, uncertainty, dataclasses.replace(result, strategy=bad)
        )
        assert "strategy_box" in certificate.failures()

    def test_bracket_inversion_rejected(self, solved):
        game, uncertainty, result = solved
        corrupted = dataclasses.replace(
            result,
            lower_bound=result.upper_bound + 1.0,
            upper_bound=result.lower_bound,
        )
        certificate = certify_result(game, uncertainty, corrupted)
        assert not certificate.valid
        assert "bracket" in certificate.failures()

    def test_wide_gap_with_converged_flag_rejected(self, solved):
        game, uncertainty, result = solved
        corrupted = dataclasses.replace(
            result, lower_bound=result.upper_bound - 10 * result.epsilon
        )
        certificate = certify_result(game, uncertainty, corrupted)
        assert "bracket" in certificate.failures()

    def test_wide_gap_tolerated_when_not_converged(self, solved):
        game, uncertainty, result = solved
        unconverged = dataclasses.replace(
            result,
            lower_bound=result.upper_bound - 10 * result.epsilon,
            converged=False,
        )
        certificate = certify_result(game, uncertainty, unconverged)
        assert "bracket" not in certificate.failures()

    def test_lying_value_rejected(self, solved):
        game, uncertainty, result = solved
        corrupted = dataclasses.replace(
            result, worst_case_value=result.worst_case_value + 1.0
        )
        certificate = certify_result(game, uncertainty, corrupted)
        assert "reported_value" in certificate.failures()

    def test_inflated_bracket_rejected_by_value_check(self, solved):
        game, uncertainty, result = solved
        # A bracket far above what the strategy actually achieves: the
        # exact recomputation falls out of the slack envelope.
        shift = 10 * certify_result(game, uncertainty, result).slack
        corrupted = dataclasses.replace(
            result,
            lower_bound=result.lower_bound + shift,
            upper_bound=result.lower_bound + shift + result.epsilon / 2,
        )
        certificate = certify_result(game, uncertainty, corrupted)
        assert not certificate.valid
        assert "value_in_bracket" in certificate.failures()

    def test_corrupted_adversary_rejected(self, solved):
        game, uncertainty, result = solved
        worst = result.worst_case
        corrupted_worst = dataclasses.replace(
            worst, attractiveness=worst.attractiveness * 50.0
        )
        certificate = certify_result(
            game, uncertainty, dataclasses.replace(result, worst_case=corrupted_worst)
        )
        assert "adversary_consistent" in certificate.failures()

    def test_nonfinite_lower_bound_rejected(self, solved):
        game, uncertainty, result = solved
        corrupted = dataclasses.replace(result, lower_bound=-float("inf"))
        certificate = certify_result(game, uncertainty, corrupted)
        assert "oracle_feasibility" in certificate.failures()
