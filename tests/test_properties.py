"""Cross-cutting property-based tests (hypothesis) on whole-game invariants.

These tie multiple subsystems together on randomly generated games:
duality, monotonicity of robustness, schedule implementability, and the
consistency of every evaluation angle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.evaluation import evaluate_strategy
from repro.core.dual import beta_star, g_value
from repro.core.worst_case import worst_case_response


@st.composite
def interval_world(draw):
    """A random interval game + tight SUQR uncertainty + a strategy."""
    t = draw(st.integers(2, 7))
    seed = draw(st.integers(0, 10**6))
    game = repro.random_interval_game(t, payoff_halfwidth=0.5, seed=seed)
    w1_lo = draw(st.floats(-5.0, -2.0))
    w1_w = draw(st.floats(0.0, 2.0))
    uncertainty = repro.IntervalSUQR(
        game.payoffs,
        w1=(w1_lo - w1_w, w1_lo),
        w2=(0.5, 0.9),
        w3=(0.3, 0.7),
        convention="tight",
    )
    x = game.strategy_space.random(draw(st.integers(0, 10**6)))
    return game, uncertainty, x


class TestWorldInvariants:
    @given(interval_world())
    @settings(max_examples=30)
    def test_worst_leq_midpoint_leq_best(self, world):
        game, uncertainty, x = world
        ev = evaluate_strategy(game, uncertainty, x)
        assert ev.worst_case <= ev.midpoint + 1e-9
        assert ev.midpoint <= ev.best_case + 1e-9

    @given(interval_world())
    @settings(max_examples=30)
    def test_worst_case_within_utility_range(self, world):
        game, uncertainty, x = world
        ev = evaluate_strategy(game, uncertainty, x)
        ud = game.defender_utilities(x)
        assert ud.min() - 1e-9 <= ev.worst_case <= ud.max() + 1e-9

    @given(interval_world())
    @settings(max_examples=30)
    def test_duality_gap_zero(self, world):
        """Primal vertex enumeration == dual fixed point at any strategy."""
        game, uncertainty, x = world
        ud = game.defender_utilities(x)
        lo, hi = uncertainty.lower(x), uncertainty.upper(x)
        primal = worst_case_response(ud, lo, hi).value
        # At c = primal, the dual G must vanish (strong duality).
        g = g_value(lo, hi, ud, beta_star(ud, primal), primal)
        assert g == pytest.approx(0.0, abs=max(1e-7, 1e-7 * abs(lo.sum())))

    @given(interval_world())
    @settings(max_examples=30)
    def test_sampled_types_respect_worst_case(self, world):
        game, uncertainty, x = world
        ud = game.defender_utilities(x)
        worst = worst_case_response(ud, uncertainty.lower(x), uncertainty.upper(x)).value
        for seed in range(3):
            model = uncertainty.sample_model(seed)
            assert model.expected_defender_utility(ud, x) >= worst - 1e-7

    @given(interval_world())
    @settings(max_examples=20)
    def test_narrowing_uncertainty_weakly_improves_worst_case(self, world):
        game, uncertainty, x = world
        narrow = uncertainty.with_scaled_uncertainty(0.5)
        wide_v = evaluate_strategy(game, uncertainty, x).worst_case
        narrow_v = evaluate_strategy(game, narrow, x).worst_case
        assert narrow_v >= wide_v - 1e-9

    @given(interval_world())
    @settings(max_examples=15)
    def test_integral_strategies_schedule(self, world):
        game, uncertainty, x = world
        if abs(game.num_resources - round(game.num_resources)) > 1e-9:
            return  # comb decomposition needs whole patrols
        schedule = repro.decompose_coverage(x)
        np.testing.assert_allclose(schedule.marginals(), x, atol=1e-7)

    @given(interval_world())
    @settings(max_examples=10)
    def test_uniform_scaling_of_attractiveness_is_invariant(self, world):
        """q is scale-invariant in F: multiplying L and U by a constant
        leaves the worst-case utility unchanged."""
        game, uncertainty, x = world
        ud = game.defender_utilities(x)
        lo, hi = uncertainty.lower(x), uncertainty.upper(x)
        base = worst_case_response(ud, lo, hi).value
        scaled = worst_case_response(ud, 7.5 * lo, 7.5 * hi).value
        assert scaled == pytest.approx(base, abs=1e-9, rel=1e-9)


class TestCubisProperties:
    @given(st.integers(0, 10**4))
    @settings(max_examples=8)
    def test_cubis_beats_uniform_and_is_feasible(self, seed):
        game = repro.random_interval_game(4, payoff_halfwidth=0.5, seed=seed)
        uncertainty = repro.IntervalSUQR(
            game.payoffs, w1=(-4.0, -2.0), w2=(0.6, 0.9), w3=(0.3, 0.6),
            convention="tight",
        )
        result = repro.solve_cubis(game, uncertainty, num_segments=10, epsilon=0.02)
        assert game.strategy_space.contains(result.strategy, atol=1e-6)
        uniform_v = evaluate_strategy(
            game, uncertainty, game.strategy_space.uniform()
        ).worst_case
        assert result.worst_case_value >= uniform_v - 0.05

    @given(st.integers(0, 10**4))
    @settings(max_examples=5)
    def test_binary_search_trace_monotone(self, seed):
        game = repro.random_interval_game(4, payoff_halfwidth=0.5, seed=seed)
        uncertainty = repro.IntervalSUQR(
            game.payoffs, w1=(-4.0, -2.0), w2=(0.6, 0.9), w3=(0.3, 0.6),
            convention="tight",
        )
        result = repro.solve_cubis(game, uncertainty, num_segments=6, epsilon=0.05)
        feas = [c for c, ok in result.trace if ok]
        infeas = [c for c, ok in result.trace if not ok]
        if feas and infeas:
            assert max(feas) <= min(infeas) + 1e-9
