"""Tests for JSON serialisation (repro.analysis.io)."""

import numpy as np
import pytest

from repro.analysis.io import (
    game_from_dict,
    game_to_dict,
    load_json,
    result_to_dict,
    save_json,
    uncertainty_from_dict,
    uncertainty_to_dict,
)
from repro.behavior.interval import IntervalSUQR
from repro.behavior.interval_qr import IntervalQR
from repro.core.cubis import solve_cubis
from repro.game.generator import random_game, random_interval_game, table1_game


class TestGameRoundTrip:
    def test_point_game(self):
        game = random_game(6, num_resources=2, seed=0)
        restored = game_from_dict(game_to_dict(game))
        assert restored.num_resources == game.num_resources
        np.testing.assert_array_equal(
            restored.payoffs.attacker_reward, game.payoffs.attacker_reward
        )
        np.testing.assert_array_equal(
            restored.payoffs.defender_penalty, game.payoffs.defender_penalty
        )

    def test_interval_game(self):
        game = random_interval_game(5, seed=1)
        restored = game_from_dict(game_to_dict(game))
        np.testing.assert_array_equal(
            restored.payoffs.attacker_reward_lo, game.payoffs.attacker_reward_lo
        )
        np.testing.assert_array_equal(
            restored.payoffs.attacker_penalty_hi, game.payoffs.attacker_penalty_hi
        )

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            game_from_dict({"kind": "mystery"})

    def test_unserialisable_type(self):
        with pytest.raises(TypeError, match="serialise"):
            game_to_dict("not a game")

    def test_json_file_round_trip(self, tmp_path):
        game = table1_game()
        path = tmp_path / "game.json"
        save_json(game_to_dict(game), path)
        restored = game_from_dict(load_json(path))
        np.testing.assert_array_equal(
            restored.payoffs.defender_reward, game.payoffs.defender_reward
        )


class TestUncertaintyRoundTrip:
    def test_interval_suqr(self):
        game = table1_game()
        model = IntervalSUQR(
            game.payoffs, w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9)
        )
        restored = uncertainty_from_dict(uncertainty_to_dict(model), game.payoffs)
        x = np.array([0.3, 0.7])
        np.testing.assert_allclose(restored.lower(x), model.lower(x))
        np.testing.assert_allclose(restored.upper(x), model.upper(x))
        assert restored.convention == "endpoint"

    def test_interval_suqr_tight_convention_preserved(self):
        game = random_interval_game(4, seed=2)
        model = IntervalSUQR(
            game.payoffs, w1=(-4.0, -2.0), w2=(0.5, 0.9), w3=(0.3, 0.6),
            convention="tight",
        )
        restored = uncertainty_from_dict(uncertainty_to_dict(model), game.payoffs)
        assert restored.convention == "tight"

    def test_interval_qr(self):
        game = random_interval_game(4, seed=3)
        model = IntervalQR(game.payoffs, rationality=(0.2, 0.9))
        restored = uncertainty_from_dict(uncertainty_to_dict(model), game.payoffs)
        x = np.full(4, 0.25)
        np.testing.assert_allclose(restored.lower(x), model.lower(x))

    def test_unknown_kind(self):
        game = random_interval_game(3, seed=4)
        with pytest.raises(ValueError, match="kind"):
            uncertainty_from_dict({"kind": "nope"}, game.payoffs)

    def test_unserialisable(self):
        with pytest.raises(TypeError, match="serialise"):
            uncertainty_to_dict(object())


class TestResultSerialisation:
    def test_cubis_result(self):
        game = table1_game()
        model = IntervalSUQR(
            game.payoffs, w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9)
        )
        result = solve_cubis(game, model, num_segments=8, epsilon=0.05)
        data = result_to_dict(result)
        assert data["kind"] == "CubisResult"
        assert isinstance(data["strategy"], list)
        assert isinstance(data["worst_case_value"], float)
        # Nested dataclass (the worst-case response) serialises too.
        assert isinstance(data["worst_case"]["attack_distribution"], list)
        # Trace tuples become lists of [c, feasible].
        assert isinstance(data["trace"], list)

    def test_json_writable(self, tmp_path):
        import json

        game = table1_game()
        model = IntervalSUQR(
            game.payoffs, w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9)
        )
        result = solve_cubis(game, model, num_segments=6, epsilon=0.1)
        path = tmp_path / "result.json"
        save_json(result_to_dict(result), path)
        data = json.loads(path.read_text())
        assert data["num_segments"] == 6

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError, match="dataclass"):
            result_to_dict({"not": "a dataclass"})


class TestBandScaledRoundTrip:
    def test_band_scaled_wrapping_suqr(self):
        from repro.behavior.interval import BandScaledModel

        game = random_interval_game(4, seed=6)
        base = IntervalSUQR(
            game.payoffs, w1=(-4.0, -2.0), w2=(0.5, 0.9), w3=(0.3, 0.6),
            convention="tight",
        )
        model = BandScaledModel(base, 0.75)
        data = uncertainty_to_dict(model)
        assert data["kind"] == "band_scaled"
        assert data["factor"] == 0.75
        assert data["base"]["kind"] == "interval_suqr"
        restored = uncertainty_from_dict(data, game.payoffs)
        assert isinstance(restored, BandScaledModel)
        pts = np.linspace(0.0, 1.0, 9)
        np.testing.assert_array_equal(
            restored.lower_on_grid(pts), model.lower_on_grid(pts)
        )
        np.testing.assert_array_equal(
            restored.upper_on_grid(pts), model.upper_on_grid(pts)
        )
