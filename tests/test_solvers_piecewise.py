"""Unit + property tests for repro.solvers.piecewise."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.solvers.piecewise import SegmentGrid


class TestConstruction:
    def test_breakpoints(self):
        g = SegmentGrid(4)
        np.testing.assert_allclose(g.breakpoints, [0.0, 0.25, 0.5, 0.75, 1.0])
        assert g.segment_length == 0.25

    def test_single_segment(self):
        g = SegmentGrid(1)
        np.testing.assert_allclose(g.breakpoints, [0.0, 1.0])

    def test_invalid_count(self):
        with pytest.raises(ValueError, match="num_segments"):
            SegmentGrid(0)

    def test_breakpoints_readonly(self):
        g = SegmentGrid(3)
        with pytest.raises(ValueError):
            g.breakpoints[0] = 5.0


class TestSlopes:
    def test_linear_function_constant_slope(self):
        g = SegmentGrid(5)
        values = 3.0 * g.breakpoints + 1.0  # f(x) = 3x + 1
        s = g.slopes(values)
        np.testing.assert_allclose(s, np.full(5, 3.0))

    def test_multi_target(self):
        g = SegmentGrid(2)
        values = np.array([[0.0, 1.0, 4.0], [1.0, 0.5, 0.0]])
        s = g.slopes(values)
        np.testing.assert_allclose(s, [[2.0, 6.0], [-1.0, -1.0]])

    def test_wrong_columns(self):
        g = SegmentGrid(3)
        with pytest.raises(ValueError, match="breakpoint columns"):
            g.slopes(np.zeros((2, 3)))


class TestDecompose:
    def test_paper_example_1(self):
        """Paper Example 1: K=5, x=0.3 -> x_{i,1}=0.2, x_{i,2}=0.1, rest 0."""
        g = SegmentGrid(5)
        parts = g.decompose(np.array([0.3]))
        np.testing.assert_allclose(parts[0], [0.2, 0.1, 0.0, 0.0, 0.0])

    def test_full_coverage(self):
        g = SegmentGrid(4)
        parts = g.decompose(np.array([1.0]))
        np.testing.assert_allclose(parts[0], [0.25] * 4)

    def test_zero_coverage(self):
        g = SegmentGrid(4)
        np.testing.assert_allclose(g.decompose(np.array([0.0]))[0], np.zeros(4))

    def test_out_of_range_rejected(self):
        g = SegmentGrid(4)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            g.decompose(np.array([1.2]))

    def test_reconstruct_roundtrip(self):
        g = SegmentGrid(7)
        x = np.array([0.0, 0.123, 0.5, 0.987, 1.0])
        np.testing.assert_allclose(g.reconstruct(g.decompose(x)), x, atol=1e-12)

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=6), st.integers(1, 20))
    def test_decompose_properties(self, xs, k):
        g = SegmentGrid(k)
        x = np.array(xs)
        parts = g.decompose(x)
        assert parts.shape == (len(x), k)
        assert np.all(parts >= 0.0)
        assert np.all(parts <= g.segment_length + 1e-12)
        np.testing.assert_allclose(parts.sum(axis=1), x, atol=1e-9)
        assert g.is_fill_ordered(parts)


class TestSeamPoints:
    """Decomposition exactly at segment boundaries, where float arithmetic
    is most likely to over- or underfill a segment."""

    @given(st.integers(1, 64))
    def test_every_breakpoint_round_trips_exactly(self, k):
        g = SegmentGrid(k)
        for j in range(k + 1):
            x = np.array([j / k])
            parts = g.decompose(x)
            # Exact equality, not approx: j/k must survive the round trip.
            assert g.reconstruct(parts)[0] == x[0]

    @given(st.integers(1, 64))
    def test_breakpoint_fill_is_all_or_nothing(self, k):
        """At x = j/K the first j segments are exactly full and the rest
        are exactly empty — no seam segment holds a stray epsilon."""
        g = SegmentGrid(k)
        for j in range(k + 1):
            parts = g.decompose(np.array([j / k]))[0]
            filled = parts >= g.segment_length - 1e-15
            empty = parts <= 1e-15
            assert filled[:j].all() if j else True
            assert empty[j:].all()
            assert g.is_fill_ordered(parts[None, :])

    @given(st.integers(1, 64))
    def test_full_coverage_exact(self, k):
        g = SegmentGrid(k)
        parts = g.decompose(np.array([1.0]))
        assert g.reconstruct(parts)[0] == 1.0
        assert np.all(parts[0] <= np.diff(g.breakpoints))

    @given(
        st.integers(1, 32),
        st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_never_overfills_a_segment(self, k, x):
        """Strict bound — no tolerance: ``decompose`` must never assign a
        segment more mass than its breakpoint-to-breakpoint capacity."""
        g = SegmentGrid(k)
        parts = g.decompose(np.array([x]))[0]
        capacity = np.diff(g.breakpoints)
        assert np.all(parts <= capacity)
        assert np.all(parts >= 0.0)

    @given(st.integers(1, 32), st.floats(0.0, 1.0, allow_nan=False))
    def test_near_seam_perturbations(self, k, x):
        """Points one ulp either side of a seam still decompose cleanly."""
        g = SegmentGrid(k)
        for nudged in (np.nextafter(x, 0.0), x, np.nextafter(x, 1.0)):
            if not 0.0 <= nudged <= 1.0:
                continue
            parts = g.decompose(np.array([nudged]))
            assert g.is_fill_ordered(parts)
            np.testing.assert_allclose(g.reconstruct(parts), [nudged], atol=1e-15)


class TestFillOrder:
    def test_accepts_fill_ordered(self):
        g = SegmentGrid(3)
        ok = np.array([[1 / 3, 0.1, 0.0]])
        assert g.is_fill_ordered(ok)

    def test_rejects_gap(self):
        g = SegmentGrid(3)
        bad = np.array([[0.1, 0.2, 0.0]])  # seg 2 used but seg 1 not full
        assert not g.is_fill_ordered(bad)

    def test_shape_check_in_reconstruct(self):
        g = SegmentGrid(3)
        with pytest.raises(ValueError, match="columns"):
            g.reconstruct(np.zeros((1, 4)))


class TestInterpolate:
    def test_exact_on_linear(self):
        g = SegmentGrid(6)
        bp = g.breakpoints
        values = np.stack([2 * bp - 1, -0.5 * bp + 3])
        x = np.array([0.37, 0.81])
        out = g.interpolate(values, x)
        np.testing.assert_allclose(out, [2 * 0.37 - 1, -0.5 * 0.81 + 3], atol=1e-12)

    def test_exact_at_breakpoints(self):
        g = SegmentGrid(4)
        f = lambda t: np.exp(-2 * t)
        values = f(g.breakpoints)[None, :].repeat(2, axis=0)
        x = np.array([0.25, 0.75])
        out = g.interpolate(values, x)
        np.testing.assert_allclose(out, f(x), atol=1e-12)

    def test_error_decreases_with_k(self):
        """Lemma 1 in miniature: PWL error of a smooth function ~ 1/K."""
        f = lambda t: np.exp(-3 * t)
        xs = np.linspace(0, 1, 101)
        errors = []
        for k in (2, 4, 8, 16, 32):
            g = SegmentGrid(k)
            values = f(g.breakpoints)[None, :]
            approx = np.array([g.interpolate(values, np.array([x]))[0] for x in xs])
            errors.append(np.abs(approx - f(xs)).max())
        assert all(errors[i + 1] < errors[i] for i in range(len(errors) - 1))
        # Roughly quadratic convergence for interpolation of smooth f, but
        # at least the O(1/K) of Lemma 1.
        assert errors[-1] < errors[0] / 16

    def test_max_abs_on_grid(self):
        g = SegmentGrid(2)
        values = np.array([[1.0, -5.0, 2.0]])
        assert g.max_abs_on_grid(values)[0] == 5.0


class TestDecomposeMatchesLoopReference:
    """The vectorised telescoping decomposition must agree bit for bit
    with the definitional per-entry loop x_{i,k} = min(x_i, k/K) -
    min(x_i, (k-1)/K)."""

    @staticmethod
    def _loop_reference(grid, x):
        x = np.asarray(x, dtype=np.float64)
        k = grid.num_segments
        out = np.zeros((x.shape[0], k))
        for i in range(x.shape[0]):
            for seg in range(1, k + 1):
                out[i, seg - 1] = (
                    min(x[i], grid.breakpoints[seg])
                    - min(x[i], grid.breakpoints[seg - 1])
                )
        return out

    @pytest.mark.parametrize("k", [1, 2, 5, 8])
    def test_random_coverage_vectors(self, k):
        grid = SegmentGrid(k)
        rng = np.random.default_rng(k)
        x = rng.uniform(0.0, 1.0, size=12)
        np.testing.assert_array_equal(
            grid.decompose(x), self._loop_reference(grid, x)
        )

    def test_breakpoint_coverage_is_exact(self):
        # At grid breakpoints both forms must land exactly on 0/K-sized
        # segments, with no float residue.
        grid = SegmentGrid(5)
        x = grid.breakpoints.copy()
        got = grid.decompose(x)
        np.testing.assert_array_equal(got, self._loop_reference(grid, x))
        # Row for x = j/K fills exactly j segments of size 1/K each.
        for j, row in enumerate(got):
            assert np.count_nonzero(row) == j
