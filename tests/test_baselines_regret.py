"""Tests for the minimax-regret baseline."""

import numpy as np
import pytest

from repro.baselines.pasaq import solve_pasaq
from repro.baselines.regret import solve_minimax_regret
from repro.behavior.sampling import sample_attacker_types
from repro.game.ssg import SecurityGame


class TestSolveMinimaxRegret:
    def test_single_type_zero_regret(self, small_interval_game, small_uncertainty):
        """With one type, the regret-optimal plan is (approximately) the
        clairvoyant plan — regret ~ 0."""
        t = small_uncertainty.midpoint_model()
        res = solve_minimax_regret(
            small_interval_game, [t], num_segments=15, num_starts=8, seed=0
        )
        assert res.max_regret == pytest.approx(0.0, abs=0.1)

    def test_regret_nonnegative_up_to_approximation(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 4, seed=1)
        res = solve_minimax_regret(
            small_interval_game, types, num_segments=12, num_starts=5, seed=2
        )
        # OPT_m is epsilon/K-approximate, so tiny negative regret can occur.
        assert np.all(res.per_type_regret >= -0.1)
        assert res.max_regret == pytest.approx(res.per_type_regret.max())

    def test_optima_match_pasaq(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 3, seed=3)
        res = solve_minimax_regret(
            small_interval_game, types, num_segments=12, num_starts=3, seed=4
        )
        for m, model in enumerate(types):
            point = SecurityGame(model.payoffs, small_interval_game.num_resources)
            opt = solve_pasaq(point, model, num_segments=12).value
            assert res.type_optima[m] == pytest.approx(opt, abs=1e-6)

    def test_strategy_feasible(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 3, seed=5)
        res = solve_minimax_regret(
            small_interval_game, types, num_starts=4, seed=6
        )
        assert small_interval_game.strategy_space.contains(res.strategy, atol=1e-5)

    def test_beats_uniform_regret(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 4, seed=7)
        res = solve_minimax_regret(
            small_interval_game, types, num_segments=12, num_starts=6, seed=8
        )
        ud = lambda x: small_interval_game.defender_utilities(x)
        x_u = small_interval_game.strategy_space.uniform()
        uniform_regret = max(
            res.type_optima[m] - t.expected_defender_utility(ud(x_u), x_u)
            for m, t in enumerate(types)
        )
        assert res.max_regret <= uniform_regret + 0.05

    def test_empty_types_rejected(self, small_interval_game):
        with pytest.raises(ValueError, match="at least one"):
            solve_minimax_regret(small_interval_game, [])

    def test_deterministic(self, small_interval_game, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 2, seed=9)
        a = solve_minimax_regret(small_interval_game, types, num_starts=3, seed=10)
        b = solve_minimax_regret(small_interval_game, types, num_starts=3, seed=10)
        np.testing.assert_allclose(a.strategy, b.strategy)
