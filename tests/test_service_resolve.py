"""Service-level tests for the standing-resolve pipeline.

Three layers: request canonicalisation and the standing/shape keys
(pure functions), the engine's ``submit_resolve`` path driving real
small-game solves against per-tenant standing handles, and the HTTP
surface (``POST /v1/resolve`` through the daemon + client, with the
``repro_resolve_*`` counters visible on ``/metrics``).
"""

import json

import pytest

from repro.analysis.io import game_to_dict, uncertainty_to_dict
from repro.behavior.interval import BandScaledModel
from repro.service import ServiceClient, ServiceDaemon, SolveEngine
from repro.service.requests import (
    RequestError,
    canonicalize_resolve_request,
    instance_hash,
    shape_hash,
    standing_key,
)
from tests import fixtures_games


def resolve_body(factor=None, **options) -> dict:
    """A small-game resolve request; ``factor`` band-scales the bands."""
    game = fixtures_games.small_interval_game()
    uncertainty = fixtures_games.small_suqr(game)
    if factor is not None:
        uncertainty = BandScaledModel(uncertainty, factor)
    body = {
        "game": game_to_dict(game),
        "uncertainty": uncertainty_to_dict(uncertainty),
    }
    if options:
        body["options"] = options
    return body


def resolve_payload(ticket) -> dict:
    result = ticket.wait(timeout=60.0)
    assert result.status == 200, result.body
    return json.loads(result.body)


class TestCanonicalizeResolveRequest:
    def test_rejects_standing_incompatible_options(self):
        for key, value in (("oracle", "dp"), ("resilience", True),
                           ("session", "fresh")):
            with pytest.raises(RequestError, match="not supported"):
                canonicalize_resolve_request(resolve_body(**{key: value}))

    def test_disables_resilience_in_canonical_form(self):
        canonical = canonicalize_resolve_request(resolve_body())
        assert canonical["options"]["resilience"] is False

    def test_standing_key_survives_drift_but_not_tenant_or_options(self):
        base = canonicalize_resolve_request(resolve_body())
        drifted = canonicalize_resolve_request(resolve_body(factor=0.9))
        # Drift changes the instance but not the standing session's key.
        assert instance_hash(base) != instance_hash(drifted)
        assert standing_key(base, "a") == standing_key(drifted, "a")
        assert standing_key(base, "a") != standing_key(base, "b")
        other = canonicalize_resolve_request(resolve_body(num_segments=8))
        assert standing_key(base, "a") != standing_key(other, "a")

    def test_shape_hash_ignores_uncertainty(self):
        base = canonicalize_resolve_request(resolve_body())
        drifted = canonicalize_resolve_request(resolve_body(factor=0.8))
        assert shape_hash(base) == shape_hash(drifted)


class TestEngineResolve:
    """submit_resolve drives real (small, fast) solves — the standing
    handle, drift classification, and counters are the product surface."""

    def make_engine(self, workers=1):
        return SolveEngine(workers=workers, queue_depth=8,
                           solve_fn=lambda *a, **k: None)

    def test_first_request_starts_standing_then_reenters(self):
        engine = self.make_engine()
        try:
            first = resolve_payload(engine.submit_resolve(resolve_body()))
            assert first["resolve"]["standing"] is False
            assert first["resolve"]["drift"] is None
            assert engine.metric_value(
                "repro_service_standing_started_total") == 1

            second = resolve_payload(
                engine.submit_resolve(resolve_body(factor=0.9)))
            assert second["resolve"]["standing"] is True
            assert second["resolve"]["drift"]["kind"] == "shrink"
            assert second["resolve"]["bracket_reused"] is True
            assert engine.metric_value(
                "repro_service_standing_started_total") == 1
            assert engine.metric_value("repro_resolve_solves_total") == 1
            assert engine.metric_value("repro_resolve_bracket_reuses_total") == 1
        finally:
            engine.close()

    def test_widening_drift_reported_without_bracket_reuse(self):
        engine = self.make_engine()
        try:
            resolve_payload(engine.submit_resolve(resolve_body()))
            widened = resolve_payload(
                engine.submit_resolve(resolve_body(factor=1.2)))
            assert widened["resolve"]["drift"]["kind"] == "widen"
            assert widened["resolve"]["bracket_reused"] is False
            assert engine.metric_value("repro_resolve_bracket_reuses_total") == 0
        finally:
            engine.close()

    def test_identical_resolve_request_is_cached(self):
        engine = self.make_engine()
        try:
            body = resolve_body(factor=0.95)
            first = engine.submit_resolve(body)
            resolve_payload(first)
            second = engine.submit_resolve(body)
            assert second.cached
            assert resolve_payload(second) == resolve_payload(first)
        finally:
            engine.close()

    def test_tenants_get_separate_standing_sessions(self):
        engine = self.make_engine()
        try:
            resolve_payload(engine.submit_resolve(resolve_body(), tenant="a"))
            other = resolve_payload(
                engine.submit_resolve(resolve_body(), tenant="b"))
            # Same instance, different tenant: a fresh standing handle,
            # never the other tenant's live solver state.
            assert other["resolve"]["standing"] is False
            assert engine.metric_value(
                "repro_service_standing_started_total") == 2
        finally:
            engine.close()

    def test_resolve_sequence_agrees_with_cold_solve(self):
        """The served answer lands within the Theorem 1 slack of a local
        cold solve of the final intervals — the service adds routing and
        warm hints, never looser semantics.  (Exact bit-identity holds
        only for identical hints; that contract is pinned in
        tests/test_solvers_resolve.py.)"""
        from repro.analysis.io import game_from_dict, uncertainty_from_dict
        from repro.core.cubis import solve_cubis
        from repro.resilience.certificate import theorem_slack

        engine = self.make_engine()
        try:
            resolve_payload(engine.submit_resolve(resolve_body()))
            final = resolve_payload(
                engine.submit_resolve(resolve_body(factor=0.81)))
            body = resolve_body(factor=0.81)
            game = game_from_dict(body["game"])
            uncertainty = uncertainty_from_dict(
                body["uncertainty"], game.payoffs)
            cold = solve_cubis(game, uncertainty, num_segments=10,
                               epsilon=1e-3)
            slack = theorem_slack(game, 1e-3, 10)
            assert abs(
                final["worst_case_value"] - float(cold.worst_case_value)
            ) <= slack
        finally:
            engine.close()


class TestResolveHttp:
    @pytest.fixture()
    def daemon(self):
        engine = SolveEngine(workers=1, queue_depth=8,
                             solve_fn=lambda *a, **k: None)
        daemon = ServiceDaemon(engine, port=0).start()
        try:
            yield daemon
        finally:
            daemon.stop()

    def test_resolve_roundtrip_and_metrics(self, daemon):
        client = ServiceClient(daemon.url)
        body = resolve_body()
        first = client.resolve(body["game"], uncertainty=body["uncertainty"])
        assert first["resolve"]["standing"] is False

        drifted = resolve_body(factor=0.9)
        second = client.resolve(
            drifted["game"], uncertainty=drifted["uncertainty"])
        assert second["resolve"]["standing"] is True
        assert second["resolve"]["drift"]["kind"] == "shrink"

        metrics = client.metrics_text()
        assert "repro_resolve_solves_total 1" in metrics
        assert "repro_resolve_bracket_reuses_total 1" in metrics

    def test_incompatible_options_rejected_with_400(self, daemon):
        from repro.service import ServiceError

        client = ServiceClient(daemon.url)
        body = resolve_body()
        with pytest.raises(ServiceError) as excinfo:
            client.resolve(body["game"], uncertainty=body["uncertainty"],
                           options={"oracle": "dp"})
        assert excinfo.value.status == 400
