"""Crash-resume, sharding, and fault-isolation tests for run_grid.

The central contract under test: a sweep that is killed (simulated
``SimulatedKill``, injected torn write, or a real ``SIGKILL`` of a
subprocess) and then resumed produces a :class:`ResultTable` — and an
adopted span tree and metrics state — **bit-identical** to the same
sweep run uninterrupted.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro import telemetry
from repro.analysis.sweep import (
    ResultTable,
    SweepCellError,
    collect_store,
    run_grid,
)
from repro.resilience import SimulatedKill, SweepFaultInjector
from repro.store import SweepStore, SweepStoreError
from repro.telemetry import Telemetry, span_signature

GRID = [{"size": 2}, {"size": 3}, {"size": 4}]


def _det_trial(rng, trial_index, *, size):
    """Fully deterministic module-level trial (picklable, no wall-clock
    fields) — the bit-identity baseline."""
    draws = rng.integers(0, 10**9, size=3).tolist()
    yield {
        "value": int(draws[0]),
        "pair": draws[1:],
        "flag": bool(draws[0] % 2),
    }


def _traced_trial(rng, trial_index, *, size):
    """Deterministic trial that also emits spans and metrics, so the
    telemetry side of the resume contract is observable."""
    ctx = telemetry.current()
    ctx.metrics.counter("resume_test_cells").inc()
    value = float(rng.uniform())
    ctx.metrics.histogram(
        "resume_test_values", buckets=(0.25, 0.5, 0.75)
    ).observe(value)
    with ctx.span("resume_test.work", size=size):
        pass
    yield {"value": value, "draw": int(rng.integers(0, 10**9))}


def _rows_json(table: ResultTable) -> str:
    """The canonical byte form used for bit-identity comparison."""
    return json.dumps(table.to_dict(), sort_keys=True)


def _reference(**kwargs) -> ResultTable:
    return run_grid(_det_trial, GRID, num_trials=2, seed=5, **kwargs)


def _cell_files(root) -> list:
    return sorted(Path(root, "cells").glob("cell-*.json"))


def _manifest(root, shard=0, num=1) -> dict:
    return json.loads(
        Path(root, "shards", f"shard-{shard:04d}of{num:04d}.json").read_text()
    )


class TestStoreBackedRun:
    def test_store_run_matches_plain_run(self, tmp_path):
        plain = _reference()
        stored = _reference(store=tmp_path / "store")
        assert _rows_json(stored) == _rows_json(plain)

    def test_store_accepts_path_string(self, tmp_path):
        table = _reference(store=str(tmp_path / "store"))
        assert len(table) == 6

    def test_every_cell_persisted(self, tmp_path):
        _reference(store=tmp_path)
        assert len(_cell_files(tmp_path)) == 6

    def test_manifest_written(self, tmp_path):
        _reference(store=tmp_path)
        manifest = _manifest(tmp_path)
        assert manifest["jobs"] == 6
        assert manifest["executed"] == 6
        assert manifest["resumed"] == 0
        assert manifest["rows"] == 6

    def test_resume_without_store_raises(self):
        with pytest.raises(ValueError, match="resume.*store"):
            _reference(resume=True)

    def test_generator_seed_rejected_with_store(self, tmp_path):
        with pytest.raises(TypeError, match="re-derivable|SeedSequence"):
            run_grid(_det_trial, GRID, seed=np.random.default_rng(0),
                     store=tmp_path)

    def test_none_seed_rejected_with_store(self, tmp_path):
        with pytest.raises(TypeError):
            run_grid(_det_trial, GRID, seed=None, store=tmp_path)

    def test_seedsequence_seed_resumes(self, tmp_path):
        seed = np.random.SeedSequence(42)
        first = run_grid(_det_trial, GRID, num_trials=2,
                         seed=np.random.SeedSequence(42), store=tmp_path)
        again = run_grid(_det_trial, GRID, num_trials=2, seed=seed,
                         store=tmp_path, resume=True)
        assert _rows_json(again) == _rows_json(first)

    def test_mismatched_seed_refused_by_store(self, tmp_path):
        _reference(store=tmp_path)
        with pytest.raises(SweepStoreError, match="belongs to sweep"):
            run_grid(_det_trial, GRID, num_trials=2, seed=6, store=tmp_path)

    def test_mismatched_trial_refused_by_store(self, tmp_path):
        _reference(store=tmp_path)
        with pytest.raises(SweepStoreError, match="belongs to sweep"):
            run_grid(_traced_trial, GRID, num_trials=2, seed=5,
                     store=tmp_path)


class TestKillAndResume:
    def test_simulated_kill_then_resume_bit_identical(self, tmp_path):
        reference = _reference()
        faults = SweepFaultInjector(kill_after_puts=2)
        with pytest.raises(SimulatedKill, match="kill injected"):
            _reference(store=tmp_path, faults=faults)
        assert len(_cell_files(tmp_path)) == 2, "killed after exactly 2 puts"
        resumed = _reference(store=tmp_path, resume=True)
        assert _rows_json(resumed) == _rows_json(reference)
        manifest = _manifest(tmp_path)
        assert manifest["resumed"] == 2 and manifest["executed"] == 4

    def test_resume_replays_without_re_running(self, tmp_path):
        """Completed cells are *replayed*, not re-executed: a fault
        schedule that would crash every cell is never consulted."""
        reference = _reference(store=tmp_path)
        poison = SweepFaultInjector(
            crash=frozenset((c, t) for c in range(3) for t in range(2)),
            crash_times=99,
        )
        resumed = _reference(store=tmp_path, resume=True, faults=poison)
        assert _rows_json(resumed) == _rows_json(reference)
        manifest = _manifest(tmp_path)
        assert manifest["resumed"] == 6 and manifest["executed"] == 0

    def test_torn_write_discarded_on_resume(self, tmp_path):
        reference = _reference()
        faults = SweepFaultInjector(torn_write={(1, 0)})
        with pytest.raises(SimulatedKill, match="torn write"):
            _reference(store=tmp_path, faults=faults)
        resumed = _reference(store=tmp_path, resume=True)
        assert _rows_json(resumed) == _rows_json(reference)
        assert _manifest(tmp_path)["torn_discarded"] >= 1

    def test_double_resume_is_stable(self, tmp_path):
        reference = _reference()
        with pytest.raises(SimulatedKill):
            _reference(store=tmp_path,
                       faults=SweepFaultInjector(kill_after_puts=1))
        once = _reference(store=tmp_path, resume=True)
        twice = _reference(store=tmp_path, resume=True)
        assert _rows_json(once) == _rows_json(reference)
        assert _rows_json(twice) == _rows_json(reference)


class TestTelemetryBitIdentity:
    def _traced_run(self, **kwargs):
        ctx = Telemetry()
        with telemetry.use(ctx):
            table = run_grid(_traced_trial, GRID, num_trials=2, seed=11,
                             **kwargs)
        return table, span_signature(ctx.spans), ctx.metrics.snapshot()

    def test_resumed_trace_and_metrics_equal_uninterrupted(self, tmp_path):
        ref_table, ref_sig, ref_metrics = self._traced_run()

        # Interrupted run: no ambient context (the store forces capture),
        # killed after 3 cell writes.
        with pytest.raises(SimulatedKill):
            run_grid(_traced_trial, GRID, num_trials=2, seed=11,
                     store=tmp_path,
                     faults=SweepFaultInjector(kill_after_puts=3))

        table, sig, metrics = self._traced_run(store=tmp_path, resume=True)
        assert _rows_json(table) == _rows_json(ref_table)
        assert sig == ref_sig, "adopted span tree must match uninterrupted run"
        assert metrics == ref_metrics

    def test_stored_sweep_trace_matches_plain_sweep(self, tmp_path):
        _, ref_sig, ref_metrics = self._traced_run()
        _, sig, metrics = self._traced_run(store=tmp_path)
        assert sig == ref_sig
        assert metrics == ref_metrics


class TestRealSigkill:
    def test_sigkilled_subprocess_resumes_bit_identical(self, tmp_path):
        """The full contract, no simulation: a subprocess running a
        store-backed sweep is SIGKILLed mid-flight; the resumed sweep
        must match the uninterrupted serial reference byte for byte."""
        from repro.experiments.smoke import run_smoke

        kwargs = dict(target_counts=(3,) * 30, num_trials=2, seed=7)
        store_root = tmp_path / "store"
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "from repro.experiments.smoke import run_smoke\n"
            f"run_smoke(target_counts=(3,)*30, num_trials=2, seed=7, "
            f"store={str(store_root)!r})\n"
        )
        proc = subprocess.Popen([sys.executable, "-c", code], env=env)
        try:
            # Wait until a few cells are durably on disk, then kill -9.
            deadline = time.time() + 120
            while time.time() < deadline and proc.poll() is None:
                if len(_cell_files(store_root)) >= 3:
                    break
                time.sleep(0.005)
            if proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait()

        reference = run_smoke(**kwargs)
        resumed = run_smoke(**kwargs, store=store_root, resume=True)
        assert _rows_json(resumed) == _rows_json(reference)
        assert len(_cell_files(store_root)) == 60
        assert _manifest(store_root)["resumed"] > 0, \
            "the kill should have left completed cells to resume from"


class TestSharding:
    def test_two_shards_cover_the_grid_exactly(self, tmp_path):
        reference = _reference()
        s0 = _reference(store=tmp_path, shard="0/2")
        s1 = _reference(store=tmp_path, shard="1/2")
        assert len(s0) == 3 and len(s1) == 3
        merged = collect_store(tmp_path)
        assert _rows_json(merged) == _rows_json(reference)

    def test_shard_manifests_per_shard(self, tmp_path):
        _reference(store=tmp_path, shard="0/2")
        _reference(store=tmp_path, shard=(1, 2))
        manifests = SweepStore(tmp_path).load_shard_manifests()
        assert [(m["shard"], m["num_shards"]) for m in manifests] == \
            [(0, 2), (1, 2)]
        assert all(m["jobs"] == 3 for m in manifests)

    def test_separate_roots_merge_with_checked_keys(self, tmp_path):
        """The multi-host recipe: each host sweeps its shard into its own
        store root; the roots merge through the checked concat."""
        reference = _reference()
        _reference(store=tmp_path / "a", shard="0/2")
        _reference(store=tmp_path / "b", shard="1/2")
        tables = [
            collect_store(tmp_path / root, cell_column="_cell")
            for root in ("a", "b")
        ]
        merged = ResultTable.concat(tables, keys=("_cell", "trial"))
        final = ResultTable()
        for row in merged.rows:
            final.append(**{k: v for k, v in row.items() if k != "_cell"})
        assert _rows_json(final) == _rows_json(reference)

    def test_overlapping_stores_refused_on_merge(self, tmp_path):
        from repro.analysis.sweep import DuplicateKeyError

        _reference(store=tmp_path / "a")
        _reference(store=tmp_path / "b")
        tables = [
            collect_store(tmp_path / root, cell_column="_cell")
            for root in ("a", "b")
        ]
        with pytest.raises(DuplicateKeyError):
            ResultTable.concat(tables, keys=("_cell", "trial"))

    def test_shard_kill_and_resume(self, tmp_path):
        """Resume composes with sharding: a killed shard resumes its own
        cells only, and the merged result is still exact."""
        reference = _reference()
        _reference(store=tmp_path, shard="1/2")
        with pytest.raises(SimulatedKill):
            _reference(store=tmp_path, shard="0/2",
                       faults=SweepFaultInjector(kill_after_puts=1))
        _reference(store=tmp_path, shard="0/2", resume=True)
        assert _rows_json(collect_store(tmp_path)) == _rows_json(reference)


class TestFaultIsolationAndRetry:
    def test_crash_with_retry_recovers_bit_identically(self):
        clean = _reference()
        healed = _reference(
            faults=SweepFaultInjector(crash={(1, 0)}), retry=1
        )
        assert _rows_json(healed) == _rows_json(clean)
        assert healed.failures == []

    def test_retry_accepts_resilience_policy_duck_type(self):
        healed = _reference(
            faults=SweepFaultInjector(crash={(1, 0)}),
            retry=SimpleNamespace(max_retries=1),
        )
        assert _rows_json(healed) == _rows_json(_reference())

    def test_exhausted_cell_raises_with_full_context(self):
        with pytest.raises(SweepCellError) as excinfo:
            _reference(faults=SweepFaultInjector(crash={(1, 0)},
                                                 crash_times=99))
        failure = excinfo.value.failure
        assert failure.cell_index == 1 and failure.trial_index == 0
        assert failure.params == {"size": 3}
        assert failure.error_type == "InjectedTrialCrash"
        assert failure.attempts == 1
        assert len(failure.spawn_key) > 0
        message = str(excinfo.value)
        assert "params" in message and "seed path" in message
        assert "InjectedTrialCrash" in failure.traceback

    def test_on_error_record_keeps_siblings(self):
        table = _reference(
            faults=SweepFaultInjector(crash={(1, 0)}, crash_times=99),
            on_error="record",
        )
        assert len(table) == 5, "the five healthy cells all survive"
        assert len(table.failures) == 1
        assert (table.failures[0].cell_index,
                table.failures[0].trial_index) == (1, 0)
        # The failed cell's siblings (same config, other trial) are intact.
        assert len(table.where(size=3)) == 1

    def test_failure_rows_never_pollute_aggregation(self):
        table = _reference(
            faults=SweepFaultInjector(crash={(1, 0)}, crash_times=99),
            on_error="record",
        )
        means = table.group_mean("size", "value")
        assert set(means) == {2, 3, 4}

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            _reference(on_error="ignore")
        with pytest.raises(ValueError, match="retry"):
            _reference(retry=-1)
        with pytest.raises(ValueError, match="quarantine_after"):
            _reference(quarantine_after=0)

    def test_worker_death_in_pool_recovers(self):
        """A worker hard-killed mid-cell (os._exit) breaks the pool; the
        sweep restarts it and the result is still bit-identical."""
        clean = _reference()
        survived = _reference(
            workers=2, faults=SweepFaultInjector(die_worker={(1, 0)})
        )
        assert _rows_json(survived) == _rows_json(clean)

    def test_pool_crash_retry_matches_serial(self):
        clean = _reference()
        pooled = _reference(
            workers=2, faults=SweepFaultInjector(crash={(0, 1)}), retry=1
        )
        assert _rows_json(pooled) == _rows_json(clean)


class TestQuarantine:
    FAULTS = SweepFaultInjector(crash={(0, 0)}, crash_times=99)

    def _run(self, store, resume=False):
        return _reference(store=store, resume=resume, faults=self.FAULTS,
                          on_error="record", quarantine_after=2)

    def test_attempts_accumulate_across_resumes(self, tmp_path):
        first = self._run(tmp_path)
        assert first.failures[0].attempts == 1
        assert not first.failures[0].quarantined

        second = self._run(tmp_path, resume=True)
        assert second.failures[0].attempts == 2
        assert second.failures[0].quarantined

        third = self._run(tmp_path, resume=True)
        assert third.failures[0].quarantined
        assert _manifest(tmp_path)["executed"] == 0, \
            "a quarantined cell is never re-run"
        assert _manifest(tmp_path)["quarantined"] == 1

    def test_quarantined_cell_does_not_raise_on_resume(self, tmp_path):
        self._run(tmp_path)
        self._run(tmp_path, resume=True)
        # Even under on_error="raise", a *replayed* quarantined failure
        # surfaces on the table instead of aborting the healthy resume.
        table = _reference(store=tmp_path, resume=True, faults=self.FAULTS,
                           quarantine_after=2)
        assert len(table) == 5
        assert table.failures[0].quarantined

    def test_healthy_siblings_complete_alongside(self, tmp_path):
        table = self._run(tmp_path)
        assert len(table) == 5
        assert len(_cell_files(tmp_path)) == 6, \
            "the failure record is persisted too"


class TestCollectStore:
    def test_collect_matches_live_table(self, tmp_path):
        live = _reference(store=tmp_path)
        assert _rows_json(collect_store(tmp_path)) == _rows_json(live)

    def test_cell_column_prefixes_rows(self, tmp_path):
        _reference(store=tmp_path)
        table = collect_store(tmp_path, cell_column="_cell")
        assert table.columns[0] == "_cell"
        assert sorted(set(int(c) for c in table.column("_cell"))) == [0, 1, 2]

    def test_failures_surface(self, tmp_path):
        _reference(store=tmp_path, on_error="record",
                   faults=SweepFaultInjector(crash={(2, 1)}, crash_times=99))
        table = collect_store(tmp_path)
        assert len(table.failures) == 1
        assert table.failures[0].cell_index == 2
        assert table.failures[0].error_type == "InjectedTrialCrash"
