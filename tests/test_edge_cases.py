"""Edge-case battery: degenerate games and extreme parameters.

These are the configurations that break sloppy implementations: a single
target, full coverage budget, zero-width intervals, a single piecewise
segment, huge attractiveness scales, equal payoffs everywhere.
"""

import numpy as np
import pytest

import repro
from repro.behavior.interval import IntervalSUQR
from repro.core.cubis import solve_cubis
from repro.core.worst_case import evaluate_worst_case, worst_case_response
from repro.game.payoffs import IntervalPayoffs
from repro.game.ssg import IntervalSecurityGame


def tiny_game(num_targets=1, resources=1.0):
    base_r = np.linspace(2.0, 4.0, num_targets)
    base_p = np.linspace(-4.0, -2.0, num_targets)
    payoffs = IntervalPayoffs.zero_sum_midpoint(
        attacker_reward_lo=base_r - 0.5,
        attacker_reward_hi=base_r + 0.5,
        attacker_penalty_lo=base_p - 0.5,
        attacker_penalty_hi=base_p + 0.5,
    )
    return IntervalSecurityGame(payoffs, num_resources=resources)


def uncertainty_for(game, **kw):
    return IntervalSUQR(
        game.payoffs, w1=(-4.0, -2.0), w2=(0.5, 0.9), w3=(0.3, 0.6),
        convention="tight", **kw,
    )


class TestSingleTarget:
    def test_cubis_single_target(self):
        game = tiny_game(1, resources=1.0)
        u = uncertainty_for(game)
        result = solve_cubis(game, u, num_segments=5, epsilon=0.01)
        # Only one strategy exists: full coverage of the single target.
        np.testing.assert_allclose(result.strategy, [1.0], atol=1e-6)
        ud = game.defender_utilities(result.strategy)
        assert result.worst_case_value == pytest.approx(float(ud[0]), abs=1e-9)

    def test_worst_case_single_target(self):
        sol = worst_case_response([3.0], [0.5], [2.0])
        assert sol.value == 3.0
        assert sol.attack_distribution[0] == 1.0


class TestFullCoverage:
    def test_resources_equal_targets(self):
        game = tiny_game(3, resources=3.0)
        u = uncertainty_for(game)
        result = solve_cubis(game, u, num_segments=5, epsilon=0.01)
        np.testing.assert_allclose(result.strategy, np.ones(3), atol=1e-6)


class TestDegenerateIntervals:
    def test_zero_width_weight_boxes(self):
        """Point weight boxes + point payoffs = classic known-model game;
        CUBIS must agree with PASAQ."""
        base_r = np.array([3.0, 6.0])
        base_p = np.array([-5.0, -3.0])
        payoffs = IntervalPayoffs.zero_sum_midpoint(
            attacker_reward_lo=base_r, attacker_reward_hi=base_r,
            attacker_penalty_lo=base_p, attacker_penalty_hi=base_p,
        )
        game = IntervalSecurityGame(payoffs, num_resources=1)
        u = IntervalSUQR(
            payoffs, w1=(-3.0, -3.0), w2=(0.7, 0.7), w3=(0.5, 0.5),
            convention="tight",
        )
        cubis = solve_cubis(game, u, num_segments=25, epsilon=1e-4)
        pasaq = repro.solve_pasaq(
            game.midpoint_game(), u.midpoint_model(), num_segments=25, epsilon=1e-4
        )
        assert cubis.worst_case_value == pytest.approx(pasaq.value, abs=0.02)

    def test_equal_utilities_everywhere(self):
        """If every target yields the same defender utility, every strategy
        is worth exactly that utility in the worst case."""
        ud = np.full(4, -1.5)
        sol = worst_case_response(ud, np.full(4, 0.3), np.full(4, 2.0))
        assert sol.value == pytest.approx(-1.5)


class TestExtremeScales:
    def test_huge_attractiveness_normalised(self):
        """SUQR weights that produce e^{40}-scale attractiveness must not
        break the MILP (the grids are normalised internally)."""
        base_r = np.array([8.0, 9.0, 10.0])
        base_p = np.array([-2.0, -3.0, -2.5])
        payoffs = IntervalPayoffs.zero_sum_midpoint(
            attacker_reward_lo=base_r - 0.2, attacker_reward_hi=base_r + 0.2,
            attacker_penalty_lo=base_p - 0.2, attacker_penalty_hi=base_p + 0.2,
        )
        game = IntervalSecurityGame(payoffs, num_resources=1)
        u = IntervalSUQR(
            payoffs, w1=(-1.0, -0.5), w2=(3.5, 4.0), w3=(0.1, 0.2),
            convention="tight",
        )
        result = solve_cubis(game, u, num_segments=8, epsilon=0.05)
        assert np.isfinite(result.worst_case_value)
        assert game.strategy_space.contains(result.strategy, atol=1e-6)

    def test_overflowing_attractiveness_raises_cleanly(self):
        base_r = np.array([10.0, 9.0])
        base_p = np.array([-2.0, -3.0])
        payoffs = IntervalPayoffs.zero_sum_midpoint(
            attacker_reward_lo=base_r, attacker_reward_hi=base_r,
            attacker_penalty_lo=base_p, attacker_penalty_hi=base_p,
        )
        game = IntervalSecurityGame(payoffs, num_resources=1)
        u = IntervalSUQR(
            payoffs, w1=(-1.0, -0.5), w2=(90.0, 100.0), w3=(0.1, 0.2),
            convention="tight",
        )
        with pytest.raises(ValueError, match="finite"):
            with np.errstate(over="ignore"):
                solve_cubis(game, u, num_segments=5, epsilon=0.1)


class TestSingleSegment:
    def test_k_equals_one(self):
        """K=1 approximates every function by its chord — crude but must
        run and produce a feasible strategy."""
        game = tiny_game(3, resources=1.0)
        u = uncertainty_for(game)
        result = solve_cubis(game, u, num_segments=1, epsilon=0.05)
        assert game.strategy_space.contains(result.strategy, atol=1e-6)
        # Sanity: still no worse than a uniform strategy minus chord error.
        uniform_v = evaluate_worst_case(
            game, u, game.strategy_space.uniform()
        ).value
        assert result.worst_case_value >= uniform_v - 1.5

    def test_pasaq_k_equals_one(self):
        game = repro.random_game(3, num_resources=1, seed=0)
        model = repro.SUQR(game.payoffs, (-2.0, 0.7, 0.4))
        result = repro.solve_pasaq(game, model, num_segments=1, epsilon=0.05)
        assert game.strategy_space.contains(result.strategy, atol=1e-6)


class TestFractionalResources:
    def test_cubis_fractional_budget(self):
        game = tiny_game(3, resources=1.5)
        u = uncertainty_for(game)
        result = solve_cubis(game, u, num_segments=8, epsilon=0.02)
        assert game.strategy_space.contains(result.strategy, atol=1e-6)
        assert result.strategy.sum() == pytest.approx(1.5, abs=1e-6)
