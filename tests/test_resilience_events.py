"""Tests for repro.resilience.events: validation and serialisation."""

import dataclasses
import json
import logging

import pytest

from repro.resilience.events import OUTCOMES, SolveEventLog, StepEvent


def make_event(**overrides):
    base = dict(step=1, c=0.5, rung=0, oracle="milp", backend="highs",
                attempt=1, outcome="ok", feasible=True, wall_seconds=0.01)
    base.update(overrides)
    return StepEvent(**base)


class TestStepEventValidation:
    @pytest.mark.parametrize("outcome", OUTCOMES)
    def test_valid_outcomes_accepted(self, outcome):
        assert make_event(outcome=outcome).outcome == outcome

    @pytest.mark.parametrize("bad", ["Ok", "failed", "", "timed_out", None])
    def test_invalid_outcome_raises(self, bad):
        with pytest.raises(ValueError, match="outcome must be one of"):
            make_event(outcome=bad)

    def test_label(self):
        assert make_event().label == "milp:highs"
        assert make_event(oracle="dp", backend=None).label == "dp"


class TestSerialisation:
    def test_asdict_json_round_trip(self):
        event = make_event(outcome="error", feasible=None, message="boom")
        payload = json.dumps(dataclasses.asdict(event), sort_keys=True)
        restored = StepEvent(**json.loads(payload))
        assert restored == event

    def test_log_events_round_trip(self):
        log = SolveEventLog()
        log.record(make_event())
        log.record(make_event(step=2, outcome="timeout", feasible=None,
                              message="slow"))
        payload = json.dumps([dataclasses.asdict(e) for e in log.events])
        restored = tuple(StepEvent(**d) for d in json.loads(payload))
        assert restored == log.events


class TestSolveEventLog:
    def test_failures_and_len(self):
        log = SolveEventLog()
        log.record(make_event())
        log.record(make_event(outcome="error", feasible=None, message="x"))
        assert len(log) == 2
        assert [e.outcome for e in log.failures()] == ["error"]

    def test_summary_groups_by_label(self):
        log = SolveEventLog()
        log.record(make_event())
        log.record(make_event(rung=1, oracle="dp", backend=None,
                              outcome="timeout", feasible=None))
        text = log.summary()
        assert "oracle attempts: 2" in text
        assert "milp:highs: 1 ok, 0 error, 0 timeout" in text
        assert "dp: 0 ok, 0 error, 1 timeout" in text

    def test_failures_log_at_warning(self, caplog):
        log = SolveEventLog()
        with caplog.at_level(logging.WARNING, logger="repro.resilience"):
            log.record(make_event(outcome="error", feasible=None,
                                  message="exploded"))
        assert any("exploded" in r.message for r in caplog.records)
