"""Tests for the Table I defender-payoff calibration."""

import numpy as np
import pytest

from repro.experiments.calibration import calibrate_table1, score_candidate
from repro.game.generator import table1_game


class TestScoreCandidate:
    def test_published_candidate_matches_paper(self):
        cand = score_candidate((5.0, 7.0), (-6.0, -10.0), grid_points=501)
        assert cand.robust_x1 == pytest.approx(0.46, abs=0.01)
        assert cand.robust_value == pytest.approx(-0.90, abs=0.02)
        assert cand.midpoint_x1 == pytest.approx(0.34, abs=0.02)
        assert cand.midpoint_value == pytest.approx(-2.26, abs=0.15)

    def test_bad_candidate_scores_worse(self):
        good = score_candidate((5.0, 7.0), (-6.0, -10.0), grid_points=201)
        bad = score_candidate((9.0, 2.0), (-1.0, -2.0), grid_points=201)
        assert good.score < bad.score

    def test_score_components_consistent(self):
        cand = score_candidate((5.0, 7.0), (-6.0, -10.0), grid_points=201)
        manual = (
            abs(cand.robust_x1 - 0.46)
            + abs(cand.midpoint_x1 - 0.34)
            + abs(cand.robust_value - (-0.90)) / 3.0
            + abs(cand.midpoint_value - (-2.26)) / 3.0
        )
        assert cand.score == pytest.approx(manual)


class TestCalibrateTable1:
    def test_recovers_published_calibration(self):
        best = calibrate_table1(grid_points=201)
        assert best.defender_reward == (5.0, 7.0)
        assert best.defender_penalty == (-6.0, -10.0)

    def test_matches_table1_game(self):
        """The shipped table1_game must use the calibration's optimum."""
        best = calibrate_table1(grid_points=201)
        game = table1_game()
        np.testing.assert_array_equal(
            game.payoffs.defender_reward, best.defender_reward
        )
        np.testing.assert_array_equal(
            game.payoffs.defender_penalty, best.defender_penalty
        )
