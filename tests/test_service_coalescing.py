"""The concurrency battery: coalescing, byte identity, and backpressure.

Two layers:

* **Engine-level** tests drive :class:`SolveEngine` directly with a
  *gated* fake solver (an event the test releases), which makes the
  interleavings deterministic: every waiter is provably registered
  while the leader is still in flight, so the coalescing counters are
  exact, not statistical.
* **The acceptance demo** (ISSUE 9): 8 concurrent identical T=50 solve
  requests through the real daemon + client complete with exactly one
  oracle-backed solve, ``repro_service_coalesced_total == 7``, and all
  8 response payloads byte-identical.  This one needs no gate — the
  engine registers the in-flight entry atomically at admission, so
  every later identical submission coalesces no matter how the threads
  interleave (a completed leader would turn stragglers into cache
  hits, which the real solve's duration makes unreachable; the
  assertion is on the deterministic invariant ``coalesced == 7``).
"""

import json
import threading
import time
from types import SimpleNamespace

import pytest

from repro.game.generator import random_interval_game
from repro.service import RejectedError, ServiceClient, ServiceDaemon, SolveEngine
from repro.analysis.io import game_to_dict, uncertainty_to_dict
from tests import fixtures_games


def make_fake_result(value: float = -1.0, targets: int = 4):
    uniform = [1.0 / targets] * targets
    return SimpleNamespace(
        strategy=[0.25] * targets,
        worst_case_value=value,
        worst_case=SimpleNamespace(
            value=value, attack_distribution=uniform, attractiveness=uniform),
        lower_bound=value - 0.05,
        upper_bound=value + 0.05,
        epsilon=1e-3,
        num_segments=10,
        iterations=3,
        converged=True,
        degraded=False,
        session_mode="none",
        milp_solves=1,
        lp_solves=0,
        cache_hits=0,
    )


class GatedSolver:
    """A fake solve_fn that blocks until the test opens the gate."""

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.started = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, game, uncertainty, options, **_kwargs):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.gate.wait(30.0), "test never opened the gate"
        return make_fake_result(value=-float(options["num_segments"]))


def small_body(**options) -> dict:
    game = fixtures_games.small_interval_game()
    body = {
        "game": game_to_dict(game),
        "uncertainty": uncertainty_to_dict(fixtures_games.small_suqr(game)),
    }
    if options:
        body["options"] = options
    return body


def distinct_bodies(count: int) -> list[dict]:
    """`count` bodies over semantically different games."""
    bodies = []
    for index in range(count):
        body = small_body()
        body["game"]["defender_reward"][0] += 0.5 * (index + 1)
        bodies.append(body)
    return bodies


class TestEngineCoalescing:
    N = 12

    def test_n_identical_concurrent_requests_one_solve(self):
        solver = GatedSolver()
        engine = SolveEngine(workers=2, queue_depth=8, solve_fn=solver)
        try:
            barrier = threading.Barrier(self.N)
            tickets = [None] * self.N

            def submit(slot: int) -> None:
                barrier.wait()
                tickets[slot] = engine.submit(small_body())

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(self.N)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            assert all(ticket is not None for ticket in tickets)
            # Every submission has been classified before we open the
            # gate, so the counter assertions below are exact.
            solver.gate.set()
            results = [ticket.wait(timeout=30.0) for ticket in tickets]

            assert solver.calls == 1
            assert all(result is not None and result.status == 200
                       for result in results)
            # Byte identity is structural: one bytes object, N waiters.
            assert all(result.body is results[0].body for result in results)
            assert engine.metric_value(
                "repro_service_coalesced_total") == self.N - 1
            assert engine.metric_value("repro_service_solves_total") == 1
            assert sum(ticket.coalesced for ticket in tickets) == self.N - 1
        finally:
            solver.gate.set()
            engine.close()

    def test_payloads_decode_identically_and_report_waiters(self):
        solver = GatedSolver()
        engine = SolveEngine(workers=1, queue_depth=4, solve_fn=solver)
        try:
            first = engine.submit(small_body())
            assert solver.started.wait(10.0)
            second = engine.submit(small_body())
            solver.gate.set()
            a = first.wait(10.0)
            b = second.wait(10.0)
            assert a.body == b.body
            payload = json.loads(a.body)
            assert payload["coalesced_waiters"] == 1
        finally:
            solver.gate.set()
            engine.close()

    def test_cache_hit_after_completion(self):
        solver = GatedSolver()
        solver.gate.set()
        engine = SolveEngine(workers=1, queue_depth=4, solve_fn=solver)
        try:
            first = engine.submit(small_body())
            assert first.wait(10.0).status == 200
            again = engine.submit(small_body())
            assert again.cached and again.done
            assert again.wait(0.0).body == first.wait(0.0).body
            assert solver.calls == 1
            assert engine.metric_value("repro_service_cache_hits_total") == 1
            assert engine.metric_value("repro_service_coalesced_total") == 0
        finally:
            engine.close()

    def test_different_options_do_not_coalesce(self):
        solver = GatedSolver()
        engine = SolveEngine(workers=2, queue_depth=8, solve_fn=solver)
        try:
            t1 = engine.submit(small_body(num_segments=4))
            t2 = engine.submit(small_body(num_segments=8))
            solver.gate.set()
            r1, r2 = t1.wait(10.0), t2.wait(10.0)
            assert solver.calls == 2
            assert json.loads(r1.body)["worst_case_value"] != \
                json.loads(r2.body)["worst_case_value"]
            assert engine.metric_value("repro_service_coalesced_total") == 0
        finally:
            solver.gate.set()
            engine.close()


class TestBackpressure:
    def test_full_queue_rejects_deterministically(self):
        solver = GatedSolver()
        engine = SolveEngine(workers=1, queue_depth=2, solve_fn=solver)
        try:
            bodies = distinct_bodies(5)
            leader = engine.submit(bodies[0])
            assert solver.started.wait(10.0)  # worker busy, queue empty
            queued = [engine.submit(bodies[1]), engine.submit(bodies[2])]
            # Queue is now at its bound: everything further is a 429.
            for body in bodies[3:]:
                with pytest.raises(RejectedError) as excinfo:
                    engine.submit(body)
                assert excinfo.value.reason == "queue_full"
                assert excinfo.value.retry_after > 0
            assert engine.queue_size <= engine.queue_depth == 2
            assert engine.metric_value(
                "repro_service_rejected_total", reason="queue_full") == 2

            solver.gate.set()
            results = [t.wait(30.0) for t in [leader, *queued]]
            # No lost or duplicated results: every accepted request
            # resolves 200 with its own id, rejected ones left no trace.
            assert [r.status for r in results] == [200, 200, 200]
            ids = [json.loads(r.body)["request_id"] for r in results]
            assert len(set(ids)) == 3
            assert engine.metric_value("repro_service_solves_total") == 3
            assert engine.inflight == 0
        finally:
            solver.gate.set()
            engine.close()

    def test_rejected_request_can_be_resubmitted_later(self):
        solver = GatedSolver()
        engine = SolveEngine(workers=1, queue_depth=1, solve_fn=solver)
        try:
            bodies = distinct_bodies(3)
            leader = engine.submit(bodies[0])
            assert solver.started.wait(10.0)
            engine.submit(bodies[1])
            with pytest.raises(RejectedError):
                engine.submit(bodies[2])
            solver.gate.set()
            assert leader.wait(10.0).status == 200
            # Capacity freed: the formerly-rejected request is welcome.
            retried = engine.submit(bodies[2])
            assert retried.wait(10.0).status == 200
        finally:
            solver.gate.set()
            engine.close()

    def test_quota_rejections_are_per_tenant(self):
        solver = GatedSolver()
        solver.gate.set()
        engine = SolveEngine(workers=1, queue_depth=8, solve_fn=solver,
                             quota_rate=0.001, quota_burst=1)
        try:
            bodies = distinct_bodies(3)
            assert engine.submit(bodies[0], tenant="alice").wait(10.0).status == 200
            with pytest.raises(RejectedError) as excinfo:
                engine.submit(bodies[1], tenant="alice")
            assert excinfo.value.reason == "quota"
            assert excinfo.value.retry_after > 0
            # bob has his own bucket.
            assert engine.submit(bodies[1], tenant="bob").wait(10.0).status == 200
            assert engine.metric_value(
                "repro_service_rejected_total", reason="quota") == 1
        finally:
            engine.close()

    def test_cache_hits_and_coalesced_joins_bypass_quota(self):
        solver = GatedSolver()
        engine = SolveEngine(workers=1, queue_depth=8, solve_fn=solver,
                             quota_rate=0.001, quota_burst=1)
        try:
            first = engine.submit(small_body(), tenant="alice")
            assert solver.started.wait(10.0)
            # Identical request: coalesces, costs no token.
            joined = engine.submit(small_body(), tenant="alice")
            assert joined.coalesced
            solver.gate.set()
            assert first.wait(10.0).status == 200
            # Identical again after completion: cache hit, still free.
            cached = engine.submit(small_body(), tenant="alice")
            assert cached.cached
            # A *different* solve is what exhausts the bucket.
            with pytest.raises(RejectedError):
                engine.submit(distinct_bodies(1)[0], tenant="alice")
        finally:
            solver.gate.set()
            engine.close()


class TestWarmBank:
    def test_second_solve_on_same_instance_reuses_certificates(self):
        # Same game + uncertainty, different accuracy options: distinct
        # request hashes (no coalescing, no cache hit), but the second
        # solve is seeded from the first one's StrategyCertificate pool
        # via the warm bank.
        engine = SolveEngine(workers=1, queue_depth=4)
        try:
            first = engine.submit(small_body(num_segments=4))
            assert first.wait(60.0).status == 200
            second = engine.submit(small_body(num_segments=6))
            result = second.wait(60.0)
            assert result.status == 200
            assert engine.metric_value("repro_service_warm_hits_total") == 1
            assert engine.metric_value("repro_service_cache_hits_total") == 0
            assert engine.metric_value("repro_service_solves_total") == 2
        finally:
            engine.close()


class TestAcceptanceDemo:
    """ISSUE 9 acceptance: 8 identical T=50 requests, 1 real solve."""

    def test_eight_identical_t50_requests_one_oracle_backed_solve(self):
        game = random_interval_game(50, seed=9)
        body = {
            "game": game_to_dict(game),
            "options": {"num_segments": 6, "epsilon": 0.01},
        }
        engine = SolveEngine(workers=2, queue_depth=16)
        with ServiceDaemon(engine, port=0) as daemon:
            client = ServiceClient(daemon.url, timeout=300.0)
            barrier = threading.Barrier(8)
            raw: list = [None] * 8

            def fire(slot: int) -> None:
                barrier.wait()
                raw[slot] = client.request(
                    "POST", "/v1/solve", json.dumps(body).encode())

            threads = [threading.Thread(target=fire, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300.0)

            statuses = [entry[0] for entry in raw]
            payloads = [entry[2] for entry in raw]
            assert statuses == [200] * 8
            # Byte-identical: all eight waiters share the leader's body.
            assert len(set(payloads)) == 1
            decoded = json.loads(payloads[0])
            assert decoded["num_segments"] == 6
            assert len(decoded["strategy"]) == 50

            metrics = client.metrics_text()
            assert "repro_service_solves_total 1" in metrics
            assert "repro_service_coalesced_total 7" in metrics
            assert engine.metric_value("repro_service_solves_total") == 1
            assert engine.metric_value("repro_service_coalesced_total") == 7

    def test_full_queue_returns_429_without_exceeding_the_bound(self):
        solver = GatedSolver()
        engine = SolveEngine(workers=1, queue_depth=2, solve_fn=solver)
        with ServiceDaemon(engine, port=0) as daemon:
            client = ServiceClient(daemon.url, timeout=60.0)
            bodies = distinct_bodies(6)
            first = client.solve(bodies[0]["game"],
                                 uncertainty=bodies[0]["uncertainty"],
                                 mode="async")
            assert solver.started.wait(10.0)
            for body in bodies[1:3]:
                client.solve(body["game"], uncertainty=body["uncertainty"],
                             mode="async")
            rejected = 0
            for body in bodies[3:]:
                status, headers, payload = client.request(
                    "POST", "/v1/solve", json.dumps(body).encode())
                assert status == 429
                retry_after = {k.lower(): v for k, v in headers.items()}[
                    "retry-after"]
                assert float(retry_after) >= 1
                assert json.loads(payload)["error"]["reason"] == "queue_full"
                rejected += 1
                assert engine.queue_size <= engine.queue_depth
            assert rejected == 3
            solver.gate.set()
            deadline = time.monotonic() + 30.0
            while engine.inflight and time.monotonic() < deadline:
                time.sleep(0.02)
            assert engine.inflight == 0
            state, payload = client.result(first["id"])
            assert state == "done"
            assert engine.metric_value(
                "repro_service_rejected_total", reason="queue_full") == 3
