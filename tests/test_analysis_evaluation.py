"""Tests for repro.analysis.evaluation."""

import numpy as np
import pytest

from repro.analysis.evaluation import (
    evaluate_strategy,
    regret_upper_bound,
)
from repro.behavior.sampling import sample_attacker_types
from repro.core.worst_case import evaluate_worst_case


class TestEvaluateStrategy:
    def test_ordering_of_cases(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        ev = evaluate_strategy(small_interval_game, small_uncertainty, x)
        assert ev.worst_case <= ev.midpoint + 1e-9
        assert ev.midpoint <= ev.best_case + 1e-9
        assert ev.uncertainty_band >= 0.0

    def test_worst_case_matches_core(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        ev = evaluate_strategy(small_interval_game, small_uncertainty, x)
        core = evaluate_worst_case(small_interval_game, small_uncertainty, x)
        assert ev.worst_case == pytest.approx(core.value)

    def test_sampled_statistics(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        types = sample_attacker_types(small_uncertainty, 6, seed=0)
        ev = evaluate_strategy(
            small_interval_game, small_uncertainty, x, sampled_types=types
        )
        assert ev.sampled_min <= ev.sampled_mean + 1e-12
        # Sampled types live inside the interval set, so the interval worst
        # case lower-bounds the sampled minimum.
        assert ev.worst_case <= ev.sampled_min + 1e-6

    def test_no_types_gives_nan(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        ev = evaluate_strategy(small_interval_game, small_uncertainty, x)
        assert np.isnan(ev.sampled_mean) and np.isnan(ev.sampled_min)

    def test_best_case_is_attainable_upper_edge(self, small_interval_game, small_uncertainty, rng):
        """No sampled realisation exceeds the best case."""
        x = small_interval_game.strategy_space.uniform()
        ev = evaluate_strategy(small_interval_game, small_uncertainty, x)
        ud = small_interval_game.defender_utilities(x)
        lo = small_uncertainty.lower(x)
        hi = small_uncertainty.upper(x)
        for _ in range(100):
            f = rng.uniform(lo, hi)
            assert f @ ud / f.sum() <= ev.best_case + 1e-9


class TestRegretUpperBound:
    def test_zero_when_value_above_ub(self):
        assert regret_upper_bound(0.0, 1.0, 1.5) == 0.0

    def test_positive_gap(self):
        assert regret_upper_bound(0.0, 1.0, 0.25) == pytest.approx(0.75)

    def test_never_negative(self):
        assert regret_upper_bound(-1.0, -0.5, 0.0) == 0.0
