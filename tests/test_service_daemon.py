"""HTTP surface of the solve daemon + obs-route parity across hosts.

The observability satellite lives here: ``/healthz``, ``/metrics``, and
``/progress`` are mounted from one :class:`repro.obs.routes.ObsRoutes`
implementation by both the threaded :class:`ObsServer` and the asyncio
:class:`ServiceDaemon`, so their behaviours — including the
``--no-telemetry`` "no registry -> /metrics answers 503" contract — are
asserted against *both* hosts side by side.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.io import game_to_dict, uncertainty_to_dict
from repro.obs import ObsServer, ProgressBoard
from repro.service import (
    QueueClosedError,
    ServiceClient,
    ServiceDaemon,
    ServiceError,
    SolveEngine,
)
from repro.telemetry.metrics import MetricsRegistry
from tests import fixtures_games
from tests.test_service_coalescing import GatedSolver, small_body


def _get(url: str):
    request = urllib.request.Request(url)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture
def gated_daemon():
    solver = GatedSolver()
    solver.gate.set()
    engine = SolveEngine(workers=2, queue_depth=8, solve_fn=solver)
    daemon = ServiceDaemon(engine, port=0).start()
    try:
        yield daemon, engine, solver
    finally:
        daemon.stop()


class TestObsRouteParity:
    """One route implementation, two hosts, identical behaviour."""

    def _both_hosts(self, registry, board=None):
        obs = ObsServer(registry=registry, board=board, port=0).start()
        engine = SolveEngine(workers=1, queue_depth=2,
                             solve_fn=lambda *a, **k: None)
        daemon = ServiceDaemon(engine, port=0, registry=registry,
                               board=board).start()
        try:
            yield obs.url
            yield daemon.url
        finally:
            obs.stop()
            daemon.stop()

    def test_metrics_503_without_registry_in_both_hosts(self):
        # The --no-telemetry wiring passes registry=None in both the
        # ObsServer (--serve) and the daemon (repro serve) paths.
        hosts = self._both_hosts(registry=None)
        for url in hosts:
            status, body = _get(url + "/metrics")
            assert status == 503
            assert b"no metrics registry" in body

    def test_metrics_exposes_live_registry_in_both_hosts(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc(3)
        for url in self._both_hosts(registry=registry):
            status, body = _get(url + "/metrics")
            assert status == 200
            assert b"repro_test_total 3" in body

    def test_progress_snapshot_in_both_hosts(self):
        board = ProgressBoard()
        board.update("solve", total=10, done=4)
        for url in self._both_hosts(registry=None, board=board):
            status, body = _get(url + "/progress")
            assert status == 200
            snap = json.loads(body)
            assert snap["sections"]["solve"]["total"] == 10

    def test_healthz_in_both_hosts(self):
        for url in self._both_hosts(registry=None):
            status, body = _get(url + "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

    def test_daemon_healthz_adds_engine_state(self, gated_daemon):
        daemon, engine, _solver = gated_daemon
        health = ServiceClient(daemon.url).healthz()
        assert health["workers"] == 2
        assert health["queue_depth"] == 8
        assert health["inflight"] == 0
        assert health["draining"] is False


class TestHttpSurface:
    def test_unknown_path_is_404(self, gated_daemon):
        daemon, _engine, _solver = gated_daemon
        status, _headers, body = ServiceClient(daemon.url).request(
            "GET", "/v2/solve")
        assert status == 404
        assert json.loads(body)["error"]["type"] == "NotFound"

    def test_wrong_method_is_405(self, gated_daemon):
        daemon, _engine, _solver = gated_daemon
        client = ServiceClient(daemon.url)
        assert client.request("GET", "/v1/solve")[0] == 405
        assert client.request("POST", "/healthz", b"{}")[0] == 405
        assert client.request("POST", "/v1/result/abc", b"{}")[0] == 405

    def test_invalid_json_is_400(self, gated_daemon):
        daemon, _engine, _solver = gated_daemon
        status, _headers, body = ServiceClient(daemon.url).request(
            "POST", "/v1/solve", b"{not json")
        assert status == 400
        assert "JSON" in json.loads(body)["error"]["message"]

    def test_malformed_game_is_400(self, gated_daemon):
        daemon, _engine, _solver = gated_daemon
        client = ServiceClient(daemon.url)
        status, _headers, body = client.request(
            "POST", "/v1/solve", json.dumps({"game": {"kind": "nope"}}).encode())
        assert status == 400
        assert json.loads(body)["error"]["type"] == "BadRequest"

    def test_unknown_option_is_400_with_detail(self, gated_daemon):
        daemon, _engine, _solver = gated_daemon
        body = small_body()
        body["options"] = {"turbo": True}
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(daemon.url).solve(
                body["game"], uncertainty=body["uncertainty"],
                options=body["options"])
        assert excinfo.value.status == 400
        assert "turbo" in excinfo.value.error["message"]

    def test_oversized_body_is_413(self, gated_daemon):
        daemon, _engine, _solver = gated_daemon
        from repro.service.daemon import MAX_BODY_BYTES

        client = ServiceClient(daemon.url)
        status, _h, _b = client.request(
            "POST", "/v1/solve", b"x",
            headers={"Content-Length": str(MAX_BODY_BYTES + 1)})
        assert status == 413

    def test_unknown_result_id_is_404(self, gated_daemon):
        daemon, _engine, _solver = gated_daemon
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(daemon.url).result("deadbeef")
        assert excinfo.value.status == 404

    def test_async_mode_roundtrip(self, gated_daemon):
        daemon, _engine, _solver = gated_daemon
        client = ServiceClient(daemon.url)
        body = small_body()
        accepted = client.solve(body["game"],
                                uncertainty=body["uncertainty"],
                                mode="async")
        assert set(accepted) >= {"id", "status"}
        deadline = time.monotonic() + 10.0
        state, payload = "pending", None
        while state == "pending" and time.monotonic() < deadline:
            state, payload = client.result(accepted["id"])
            if state == "pending":
                time.sleep(0.02)
        assert state == "done"
        assert payload["request_id"] == accepted["id"]

    def test_requests_metric_labels_endpoints(self, gated_daemon):
        daemon, engine, _solver = gated_daemon
        client = ServiceClient(daemon.url)
        client.healthz()
        body = small_body()
        client.solve(body["game"], uncertainty=body["uncertainty"])
        assert engine.metric_value("repro_service_requests_total",
                                   endpoint="/healthz") == 1
        assert engine.metric_value("repro_service_requests_total",
                                   endpoint="/v1/solve") == 1

    def test_service_request_events_are_recorded(self, gated_daemon):
        daemon, engine, _solver = gated_daemon
        ServiceClient(daemon.url).healthz()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            events = [s for s in engine.telemetry.spans
                      if s.name == "service.request"]
            if events:
                break
            time.sleep(0.01)
        assert events, "expected a service.request event"
        assert events[-1].attributes["path"] == "/healthz"
        assert events[-1].attributes["status"] == 200


class TestVerifyEndpoint:
    def test_solve_then_verify_roundtrip(self):
        # A real (tiny) solve so the certificate checks have teeth.
        engine = SolveEngine(workers=1, queue_depth=4)
        with ServiceDaemon(engine, port=0) as daemon:
            client = ServiceClient(daemon.url, timeout=120.0)
            game = fixtures_games.small_interval_game()
            gd = game_to_dict(game)
            ud = uncertainty_to_dict(fixtures_games.small_suqr(game))
            solved = client.solve(gd, uncertainty=ud,
                                  options={"num_segments": 4})
            certificate = client.verify(gd, solved, uncertainty=ud)
            assert certificate["valid"] is True
            names = {check["name"] for check in certificate["checks"]}
            assert "strategy_box" in names and "value_in_bracket" in names

    def test_tampered_result_fails_verification(self):
        engine = SolveEngine(workers=1, queue_depth=4)
        with ServiceDaemon(engine, port=0) as daemon:
            client = ServiceClient(daemon.url, timeout=120.0)
            game = fixtures_games.small_interval_game()
            gd = game_to_dict(game)
            ud = uncertainty_to_dict(fixtures_games.small_suqr(game))
            solved = client.solve(gd, uncertainty=ud,
                                  options={"num_segments": 4})
            solved["worst_case_value"] = solved["worst_case_value"] + 5.0
            certificate = client.verify(gd, solved, uncertainty=ud)
            assert certificate["valid"] is False

    def test_verify_without_result_is_400(self, gated_daemon):
        daemon, _engine, _solver = gated_daemon
        status, _h, body = ServiceClient(daemon.url).request(
            "POST", "/v1/verify",
            json.dumps({"game": small_body()["game"]}).encode())
        assert status == 400
        assert "result" in json.loads(body)["error"]["message"]


class TestShutdown:
    def test_submit_after_close_raises_queue_closed(self):
        solver = GatedSolver()
        solver.gate.set()
        engine = SolveEngine(workers=1, queue_depth=2, solve_fn=solver)
        engine.close()
        with pytest.raises(QueueClosedError):
            engine.submit(small_body())

    def test_stop_drains_accepted_work(self):
        solver = GatedSolver()
        engine = SolveEngine(workers=1, queue_depth=8, solve_fn=solver)
        daemon = ServiceDaemon(engine, port=0).start()
        client = ServiceClient(daemon.url)
        body = small_body()
        accepted = client.solve(body["game"],
                                uncertainty=body["uncertainty"],
                                mode="async")
        assert solver.started.wait(10.0)
        # Open the gate from a delayed thread: stop() must block until
        # the in-flight job actually finishes, then report it as done.
        threading.Timer(0.2, solver.gate.set).start()
        daemon.stop()
        state, result = engine.lookup(accepted["id"])
        assert state == "done"
        assert result.status == 200
        assert engine.inflight == 0

    def test_stop_is_idempotent(self):
        solver = GatedSolver()
        solver.gate.set()
        engine = SolveEngine(workers=1, queue_depth=2, solve_fn=solver)
        daemon = ServiceDaemon(engine, port=0).start()
        daemon.stop()
        daemon.stop()  # second stop is a no-op, not an error
