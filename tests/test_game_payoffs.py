"""Unit tests for repro.game.payoffs."""

import numpy as np
import pytest

from repro.game.payoffs import IntervalPayoffs, PayoffMatrix


def make_point(n=3):
    return PayoffMatrix(
        defender_reward=np.arange(1.0, n + 1.0),
        defender_penalty=-np.arange(1.0, n + 1.0),
        attacker_reward=np.arange(2.0, n + 2.0),
        attacker_penalty=-np.arange(2.0, n + 2.0),
    )


class TestPayoffMatrix:
    def test_num_targets(self):
        assert make_point(4).num_targets == 4

    def test_reward_must_exceed_penalty_defender(self):
        with pytest.raises(ValueError, match="defender_reward"):
            PayoffMatrix([1.0], [1.0], [2.0], [-1.0])

    def test_reward_must_exceed_penalty_attacker(self):
        with pytest.raises(ValueError, match="attacker_reward"):
            PayoffMatrix([1.0], [-1.0], [2.0], [2.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            PayoffMatrix([1.0, 2.0], [-1.0], [2.0], [-2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one target"):
            PayoffMatrix([], [], [], [])

    def test_arrays_are_readonly(self):
        p = make_point()
        with pytest.raises(ValueError):
            p.defender_reward[0] = 99.0

    def test_defender_utilities_endpoints(self):
        p = make_point()
        np.testing.assert_allclose(p.defender_utilities(np.zeros(3)), p.defender_penalty)
        np.testing.assert_allclose(p.defender_utilities(np.ones(3)), p.defender_reward)

    def test_defender_utilities_affine(self):
        p = make_point()
        x = np.array([0.25, 0.5, 0.75])
        expected = x * p.defender_reward + (1 - x) * p.defender_penalty
        np.testing.assert_allclose(p.defender_utilities(x), expected)

    def test_attacker_utilities_endpoints(self):
        p = make_point()
        np.testing.assert_allclose(p.attacker_utilities(np.zeros(3)), p.attacker_reward)
        np.testing.assert_allclose(p.attacker_utilities(np.ones(3)), p.attacker_penalty)

    def test_utility_range(self):
        p = make_point()
        lo, hi = p.utility_range()
        assert lo == p.defender_penalty.min()
        assert hi == p.defender_reward.max()

    def test_zero_sum_construction(self):
        p = PayoffMatrix.zero_sum([3.0, 5.0], [-2.0, -4.0])
        np.testing.assert_array_equal(p.defender_reward, [2.0, 4.0])
        np.testing.assert_array_equal(p.defender_penalty, [-3.0, -5.0])

    def test_zero_sum_utilities_negate(self):
        p = PayoffMatrix.zero_sum([3.0, 5.0], [-2.0, -4.0])
        x = np.array([0.3, 0.7])
        np.testing.assert_allclose(p.defender_utilities(x), -p.attacker_utilities(x))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            PayoffMatrix([np.nan], [-1.0], [1.0], [-1.0])


def make_interval():
    return IntervalPayoffs(
        defender_reward=np.array([5.0, 7.0]),
        defender_penalty=np.array([-6.0, -10.0]),
        attacker_reward_lo=np.array([1.0, 5.0]),
        attacker_reward_hi=np.array([5.0, 9.0]),
        attacker_penalty_lo=np.array([-7.0, -9.0]),
        attacker_penalty_hi=np.array([-3.0, -5.0]),
    )


class TestIntervalPayoffs:
    def test_num_targets(self):
        assert make_interval().num_targets == 2

    def test_midpoints(self):
        p = make_interval()
        np.testing.assert_array_equal(p.attacker_reward_mid, [3.0, 7.0])
        np.testing.assert_array_equal(p.attacker_penalty_mid, [-5.0, -7.0])

    def test_midpoint_collapse_keeps_defender(self):
        p = make_interval()
        mid = p.midpoint()
        np.testing.assert_array_equal(mid.defender_reward, p.defender_reward)
        np.testing.assert_array_equal(mid.attacker_reward, p.attacker_reward_mid)

    def test_crossed_reward_interval_rejected(self):
        with pytest.raises(ValueError, match="lower <= upper"):
            IntervalPayoffs(
                defender_reward=[5.0],
                defender_penalty=[-5.0],
                attacker_reward_lo=[4.0],
                attacker_reward_hi=[2.0],
                attacker_penalty_lo=[-3.0],
                attacker_penalty_hi=[-1.0],
            )

    def test_reward_interval_must_exceed_penalty_interval(self):
        with pytest.raises(ValueError, match="strictly above"):
            IntervalPayoffs(
                defender_reward=[5.0],
                defender_penalty=[-5.0],
                attacker_reward_lo=[1.0],
                attacker_reward_hi=[2.0],
                attacker_penalty_lo=[0.0],
                attacker_penalty_hi=[1.5],
            )

    def test_defender_reward_must_exceed_penalty(self):
        with pytest.raises(ValueError, match="defender_reward"):
            IntervalPayoffs(
                defender_reward=[-5.0],
                defender_penalty=[5.0],
                attacker_reward_lo=[1.0],
                attacker_reward_hi=[2.0],
                attacker_penalty_lo=[-2.0],
                attacker_penalty_hi=[-1.0],
            )

    def test_zero_sum_midpoint_convention(self):
        p = IntervalPayoffs.zero_sum_midpoint(
            attacker_reward_lo=[1.0, 5.0],
            attacker_reward_hi=[5.0, 9.0],
            attacker_penalty_lo=[-7.0, -9.0],
            attacker_penalty_hi=[-3.0, -5.0],
        )
        np.testing.assert_array_equal(p.defender_reward, [5.0, 7.0])
        np.testing.assert_array_equal(p.defender_penalty, [-3.0, -7.0])

    def test_defender_utilities(self):
        p = make_interval()
        x = np.array([0.5, 0.5])
        expected = 0.5 * p.defender_reward + 0.5 * p.defender_penalty
        np.testing.assert_allclose(p.defender_utilities(x), expected)

    def test_utility_range(self):
        p = make_interval()
        assert p.utility_range() == (-10.0, 7.0)

    def test_degenerate_intervals_allowed(self):
        p = IntervalPayoffs(
            defender_reward=[5.0],
            defender_penalty=[-5.0],
            attacker_reward_lo=[3.0],
            attacker_reward_hi=[3.0],
            attacker_penalty_lo=[-3.0],
            attacker_penalty_hi=[-3.0],
        )
        mid = p.midpoint()
        assert mid.attacker_reward[0] == 3.0


class TestScaledWidth:
    def test_zero_collapses_to_midpoints(self):
        p = make_interval().with_scaled_width(0.0)
        np.testing.assert_allclose(p.attacker_reward_lo, p.attacker_reward_hi)
        np.testing.assert_allclose(p.attacker_reward_lo, make_interval().attacker_reward_mid)

    def test_unit_factor_is_identity(self):
        base = make_interval()
        p = base.with_scaled_width(1.0)
        np.testing.assert_allclose(p.attacker_reward_lo, base.attacker_reward_lo)
        np.testing.assert_allclose(p.attacker_penalty_hi, base.attacker_penalty_hi)

    def test_half_factor_halves_widths(self):
        base = make_interval()
        p = base.with_scaled_width(0.5)
        base_w = base.attacker_reward_hi - base.attacker_reward_lo
        np.testing.assert_allclose(p.attacker_reward_hi - p.attacker_reward_lo, 0.5 * base_w)

    def test_defender_payoffs_untouched(self):
        base = make_interval()
        p = base.with_scaled_width(0.25)
        np.testing.assert_array_equal(p.defender_reward, base.defender_reward)
        np.testing.assert_array_equal(p.defender_penalty, base.defender_penalty)

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            make_interval().with_scaled_width(-0.5)
