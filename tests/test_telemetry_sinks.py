"""Tests for repro.telemetry sinks and manifests: JSONL, Prometheus text,
span summaries, and the run manifest."""

import json
import re

import pytest

from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    build_manifest,
    git_sha,
    prometheus_text,
    read_jsonl,
    summarize_spans,
    write_jsonl,
    write_manifest,
)


def _traced_context():
    tele = Telemetry()
    with tele.span("cli.solve", experiment="solve"):
        with tele.span("cubis.solve", targets=8):
            with tele.span("binary_search.step", c=0.25) as sp:
                sp.set(feasible=True)
    tele.counter("repro_cubis_milp_solves_total").inc(3)
    tele.histogram("repro_oracle_seconds", kind="milp:highs").observe(0.002)
    return tele


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tele = _traced_context()
        path = write_jsonl(tele, tmp_path / "trace.jsonl")
        data = read_jsonl(path)
        assert data["meta"]["format_version"] == 1
        assert data["meta"]["spans"] == 3
        assert data["meta"]["metrics"] == 2
        names = [s["name"] for s in data["spans"]]
        assert names == ["cli.solve", "cubis.solve", "binary_search.step"]
        step = data["spans"][2]
        assert step["attributes"] == {"c": 0.25, "feasible": True}
        assert step["parent_id"] == data["spans"][1]["span_id"]
        kinds = {m["type"] for m in data["metrics"]}
        assert kinds == {"counter", "histogram"}

    def test_every_line_is_json(self, tmp_path):
        path = write_jsonl(_traced_context(), tmp_path / "t.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)  # raises on any malformed line

    def test_unknown_record_type_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record type"):
            read_jsonl(path)

    def test_extra_records_carry_conformance_reports(self, tmp_path):
        tele = _traced_context()
        extras = [
            {"type": "conformance", "instance": "table1", "passed": True,
             "checks": []},
            {"type": "conformance", "instance": "random-T5-seed0",
             "passed": False, "checks": []},
        ]
        path = write_jsonl(tele, tmp_path / "t.jsonl", extra_records=extras)
        data = read_jsonl(path)
        assert data["meta"]["extra_records"] == 2
        assert [r["instance"] for r in data["conformance"]] == [
            "table1", "random-T5-seed0",
        ]
        # spans and metrics are unaffected by the extra records
        assert data["meta"]["spans"] == 3
        assert len(data["metrics"]) == 2

    def test_extra_records_default_empty(self, tmp_path):
        data = read_jsonl(write_jsonl(_traced_context(), tmp_path / "t.jsonl"))
        assert data["conformance"] == []
        assert data["meta"]["extra_records"] == 0

    def test_error_span_round_trips(self, tmp_path):
        tele = Telemetry()
        with pytest.raises(ValueError):
            with tele.span("bad"):
                raise ValueError("boom")
        data = read_jsonl(write_jsonl(tele, tmp_path / "t.jsonl"))
        (span,) = data["spans"]
        assert span["status"] == "error"
        assert span["error"] == "ValueError: boom"


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("attempts_total", outcome="ok").inc(4)
        reg.gauge("pool_size").set(2)
        text = prometheus_text(reg)
        assert "# TYPE attempts_total counter" in text
        assert 'attempts_total{outcome="ok"} 4' in text
        assert "# TYPE pool_size gauge" in text
        assert "pool_size 2.0" in text

    def test_histogram_is_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        text = prometheus_text(reg)
        assert 'lat_seconds_bucket{le="1.0"} 1' in text
        assert 'lat_seconds_bucket{le="2.0"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 11.0" in text
        assert "lat_seconds_count 3" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", kind='odd"name\\x').inc()
        text = prometheus_text(reg)
        assert r'c_total{kind="odd\"name\\x"} 1' in text

    def test_newline_in_label_value_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", msg="line1\nline2").inc()
        text = prometheus_text(reg)
        assert r'c_total{msg="line1\nline2"} 1' in text
        # The raw newline must not leak into the exposition stream —
        # that would split one sample across two (invalid) lines.
        for line in text.splitlines():
            assert line.startswith(("#", "c_total"))

    def test_ends_with_newline(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        assert prometheus_text(reg).endswith("\n")


# One sample line: metric name, optional {labels}, a value.  Label
# values may contain any escaped char but never a raw quote/newline.
_SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?P<labels>\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*")*\})?'
    r' (?P<value>[0-9.eE+-]+|\+Inf|-Inf|NaN)$'
)
_TYPE_RE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]*"
                      r" (counter|gauge|histogram)$")


def _rich_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_cells_total", status="ok").inc(5)
    reg.counter("repro_cells_total", status="failed").inc(1)
    reg.counter("repro_notes_total", note='quo"te\\slash\nline').inc()
    reg.gauge("repro_pool_size").set(3)
    h = reg.histogram("repro_solve_seconds", oracle="milp:highs",
                      buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    return reg


class TestPrometheusConformance:
    """Every line of the exposition must be structurally valid
    Prometheus text format — the obs server serves this verbatim."""

    def test_every_line_valid(self):
        text = prometheus_text(_rich_registry())
        for line in text.splitlines():
            assert _TYPE_RE.match(line) or _SAMPLE_RE.match(line), line

    def test_type_line_precedes_each_family(self):
        lines = prometheus_text(_rich_registry()).splitlines()
        typed: set[str] = set()
        for line in lines:
            if line.startswith("# TYPE "):
                typed.add(line.split()[2])
            else:
                name = _SAMPLE_RE.match(line)["name"]
                base = re.sub(r"_(bucket|sum|count)$", "", name)
                assert name in typed or base in typed, line

    def test_histogram_terminates_with_inf_and_count_matches(self):
        text = prometheus_text(_rich_registry())
        buckets = [
            _SAMPLE_RE.match(line)
            for line in text.splitlines()
            if line.startswith("repro_solve_seconds_bucket")
        ]
        assert 'le="+Inf"' in buckets[-1]["labels"]
        inf_count = float(buckets[-1]["value"])
        counts = [float(m["value"]) for m in buckets]
        assert counts == sorted(counts)  # cumulative
        (count_line,) = [l for l in text.splitlines()
                         if l.startswith("repro_solve_seconds_count")]
        assert float(count_line.rsplit(" ", 1)[1]) == inf_count == 4
        (sum_line,) = [l for l in text.splitlines()
                       if l.startswith("repro_solve_seconds_sum")]
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(5.555)

    def test_escaped_labels_survive_validation(self):
        text = prometheus_text(_rich_registry())
        (note_line,) = [l for l in text.splitlines()
                        if l.startswith("repro_notes_total")]
        match = _SAMPLE_RE.match(note_line)
        assert match is not None
        assert match["labels"] == r'{note="quo\"te\\slash\nline"}'


class TestSummarizeSpans:
    def test_rollup_sorted_by_total_time(self):
        tele = _traced_context()
        summary = summarize_spans(tele.spans)
        assert summary["total_spans"] == 3
        names = [a["name"] for a in summary["by_name"]]
        # Outer spans include their children's time, so the CLI root
        # dominates the rollup.
        assert names[0] == "cli.solve"
        for agg in summary["by_name"]:
            assert agg["mean_seconds"] == pytest.approx(
                agg["total_seconds"] / agg["count"]
            )
            assert agg["errors"] == 0

    def test_slowest_limit(self):
        tele = Telemetry()
        for i in range(15):
            with tele.span("s", i=i):
                pass
        summary = summarize_spans(tele.spans, slowest_limit=10)
        assert len(summary["slowest"]) == 10
        durations = [s["duration"] for s in summary["slowest"]]
        assert durations == sorted(durations, reverse=True)

    def test_errors_counted(self):
        tele = Telemetry()
        with pytest.raises(RuntimeError):
            with tele.span("s"):
                raise RuntimeError("x")
        summary = summarize_spans(tele.spans)
        assert summary["by_name"][0]["errors"] == 1

    def test_empty(self):
        summary = summarize_spans(())
        assert summary == {"total_spans": 0, "by_name": [], "slowest": []}


class TestManifest:
    def test_build_manifest_fields(self):
        tele = _traced_context()
        manifest = build_manifest(
            command="solve",
            config={"seed": 7, "epsilon": 0.01, "out": None},
            telemetry=tele,
            seed=7,
            wall_clock_seconds=1.25,
        )
        assert manifest["schema_version"] == 1
        assert manifest["command"] == "solve"
        assert manifest["status"] == "ok"
        assert manifest["seed"] == 7
        assert manifest["config"]["epsilon"] == 0.01
        assert manifest["wall_clock_seconds"] == 1.25
        assert manifest["telemetry_enabled"] is True
        assert isinstance(manifest["git_sha"], str) and manifest["git_sha"]
        assert manifest["spans"]["total_spans"] == 3
        metric_names = {m["name"] for m in manifest["metrics"]}
        assert "repro_cubis_milp_solves_total" in metric_names

    def test_wall_clock_defaults_to_root_spans(self):
        tele = _traced_context()
        manifest = build_manifest(command="solve", config={}, telemetry=tele)
        root = tele.spans[0]
        assert manifest["wall_clock_seconds"] == pytest.approx(root.duration)

    def test_non_jsonable_config_is_stringified(self):
        manifest = build_manifest(
            command="x", config={"path": object()}, telemetry=Telemetry(),
        )
        json.dumps(manifest["config"])  # must not raise

    def test_write_manifest_is_valid_json(self, tmp_path):
        tele = _traced_context()
        manifest = build_manifest(command="solve", config={"a": 1},
                                  telemetry=tele)
        path = write_manifest(manifest, tmp_path / "RUN_manifest.json")
        loaded = json.loads(path.read_text())
        assert loaded["command"] == "solve"

    def test_git_sha_in_repo(self):
        sha = git_sha()
        assert sha == "unknown" or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(cwd=tmp_path) == "unknown"
