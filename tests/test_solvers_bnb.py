"""Unit + property tests for the pure-Python branch-and-bound MILP solver.

The key property: on random mixed-binary programs, branch and bound must
agree with HiGHS to numerical tolerance (it is the CPLEX substitution —
exactness is its whole contract).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.bnb import solve_bnb
from repro.solvers.milp_backend import MILPProblem, solve_milp


def knapsack_problem():
    return MILPProblem(
        c=np.array([-5.0, -4.0, -3.0]),
        A_ub=np.array([[2.0, 3.0, 1.0]]),
        b_ub=np.array([4.0]),
        lb=np.zeros(3),
        ub=np.ones(3),
        integrality=np.ones(3, dtype=int),
    )


class TestBranchAndBound:
    def test_knapsack(self):
        res = solve_bnb(knapsack_problem())
        assert res.optimal
        assert res.objective == pytest.approx(-8.0)
        np.testing.assert_allclose(res.x, [1.0, 0.0, 1.0], atol=1e-6)

    def test_pure_lp_no_branching(self):
        p = MILPProblem(c=np.array([-1.0, -2.0]), ub=np.array([1.0, 1.0]))
        res = solve_bnb(p)
        assert res.optimal
        assert res.nodes == 1
        assert res.objective == pytest.approx(-3.0)

    def test_infeasible(self):
        p = MILPProblem(
            c=np.array([1.0]),
            A_ub=np.array([[1.0]]),
            b_ub=np.array([-1.0]),
            ub=np.array([1.0]),
            integrality=np.array([1]),
        )
        res = solve_bnb(p)
        assert res.status == "infeasible"

    def test_integrality_forced(self):
        # LP relaxation optimum is fractional (x = 1.5); B&B must integerise.
        p = MILPProblem(
            c=np.array([-1.0]),
            A_ub=np.array([[2.0]]),
            b_ub=np.array([3.0]),
            ub=np.array([5.0]),
            integrality=np.array([1]),
        )
        res = solve_bnb(p)
        assert res.optimal
        assert res.x[0] == pytest.approx(1.0)

    def test_mixed_integer_continuous(self):
        # y continuous, b binary: max y s.t. y <= 2.7 b; best is b=1, y=2.7.
        p = MILPProblem(
            c=np.array([-1.0, 0.0]),
            A_ub=np.array([[1.0, -2.7]]),
            b_ub=np.array([0.0]),
            ub=np.array([10.0, 1.0]),
            integrality=np.array([0, 1]),
        )
        res = solve_bnb(p)
        assert res.optimal
        assert res.objective == pytest.approx(-2.7)
        assert res.x[1] == pytest.approx(1.0)

    def test_node_limit(self):
        res = solve_bnb(knapsack_problem(), max_nodes=0)
        assert res.status == "error"
        assert "node limit" in res.message

    def test_unbounded_integer_rejected(self):
        p = MILPProblem(c=np.array([1.0]), integrality=np.array([1]))
        with pytest.raises(ValueError, match="finite bounds"):
            solve_bnb(p)

    def test_equality_constraints(self):
        p = MILPProblem(
            c=np.array([1.0, 1.0, 1.0]),
            A_eq=np.array([[1.0, 1.0, 1.0]]),
            b_eq=np.array([2.0]),
            ub=np.ones(3),
            integrality=np.ones(3, dtype=int),
        )
        res = solve_bnb(p)
        assert res.optimal
        assert res.objective == pytest.approx(2.0)
        assert np.isclose(res.x.sum(), 2.0)


@st.composite
def random_binary_milp(draw):
    """Random small mixed-binary program with a bounded feasible region."""
    n_bin = draw(st.integers(1, 4))
    n_cont = draw(st.integers(0, 2))
    n = n_bin + n_cont
    m = draw(st.integers(1, 3))
    # Quantised to 1e-3 so no coefficient lands at the solvers'
    # feasibility-tolerance scale (~1e-7), where an exact solver and a
    # tolerance-based one legitimately disagree (e.g. 5e-8 * x <= 0
    # binds x to 0 exactly but is slack for HiGHS).
    fl = st.floats(-5, 5, allow_nan=False).map(lambda v: round(v, 3))
    c = np.array([draw(fl) for _ in range(n)])
    A = np.array([[draw(fl) for _ in range(n)] for _ in range(m)])
    # RHS chosen so the all-zeros point is feasible -> problem is feasible.
    b = np.array([abs(draw(fl)) for _ in range(m)])
    integrality = np.array([1] * n_bin + [0] * n_cont)
    ub = np.ones(n)
    return MILPProblem(c=c, A_ub=A, b_ub=b, lb=np.zeros(n), ub=ub, integrality=integrality)


class TestCrossBackend:
    @given(random_binary_milp())
    @settings(max_examples=40)
    def test_bnb_matches_highs(self, problem):
        ours = solve_bnb(problem)
        highs = solve_milp(problem, backend="highs")
        assert ours.status == highs.status
        if ours.optimal:
            assert ours.objective == pytest.approx(highs.objective, abs=1e-6)

    def test_backend_dispatch(self):
        p = knapsack_problem()
        via_dispatch = solve_milp(p, backend="bnb")
        direct = solve_bnb(p)
        assert via_dispatch.objective == pytest.approx(direct.objective)
