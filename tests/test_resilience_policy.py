"""Tests for the fallback ladder and retry policy (synthetic oracles —
no real solves, so every scenario is exact and fast)."""

import time

import pytest

from repro.resilience.events import SolveEventLog
from repro.resilience.policy import (
    DEFAULT_RUNGS,
    LadderExhaustedError,
    OracleLadder,
    OracleStepError,
    ResiliencePolicy,
    Rung,
)


def ok_oracle(c):
    return True, "payload"


def failing_oracle(c):
    raise OracleStepError("synthetic failure")


def two_rung_policy(**kwargs):
    return ResiliencePolicy(
        rungs=(Rung("milp", "highs"), Rung("dp")), **kwargs
    )


class TestRungAndPolicyValidation:
    def test_default_ladder_shape(self):
        assert [r.label for r in DEFAULT_RUNGS] == ["milp:highs", "milp:bnb", "dp"]

    def test_bad_oracle_kind(self):
        with pytest.raises(ValueError, match="milp.*dp"):
            Rung("simplex")

    def test_milp_requires_backend(self):
        with pytest.raises(ValueError, match="backend"):
            Rung("milp")

    def test_dp_takes_no_backend(self):
        with pytest.raises(ValueError, match="no backend"):
            Rung("dp", "highs")

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError, match="at least one rung"):
            ResiliencePolicy(rungs=())

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            ResiliencePolicy(max_retries=-1)

    def test_milp_only_strips_dp(self):
        policy = ResiliencePolicy().milp_only()
        assert all(r.oracle == "milp" for r in policy.rungs)
        with pytest.raises(ValueError, match="no milp rungs"):
            ResiliencePolicy(rungs=(Rung("dp"),)).milp_only()

    def test_ladder_needs_one_oracle_per_rung(self):
        with pytest.raises(ValueError, match="one oracle per rung"):
            OracleLadder(two_rung_policy(), (ok_oracle,))


class TestFallback:
    def test_healthy_rung_answers(self):
        ladder = OracleLadder(two_rung_policy(), (ok_oracle, failing_oracle))
        assert ladder(1.0) == (True, "payload")
        assert not ladder.degraded
        report = ladder.report()
        assert report.rung_counts == (1, 0)
        assert report.failed_attempts == 0
        assert report.rungs_used == ("milp:highs",)

    def test_falls_to_second_rung(self):
        ladder = OracleLadder(two_rung_policy(), (failing_oracle, ok_oracle))
        assert ladder(1.0) == (True, "payload")
        assert ladder.degraded
        report = ladder.report()
        assert report.degraded
        assert report.rung_counts == (0, 1)
        # Default policy gives the first rung two attempts before escalating.
        assert report.failed_attempts == 2

    def test_retry_recovers_without_escalating(self):
        calls = {"n": 0}

        def flaky(c):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OracleStepError("transient")
            return False, None

        ladder = OracleLadder(
            two_rung_policy(max_retries=1), (flaky, ok_oracle)
        )
        assert ladder(1.0) == (False, None)
        assert not ladder.degraded
        assert ladder.report().failed_attempts == 1

    def test_exhausted_ladder_raises(self):
        ladder = OracleLadder(
            two_rung_policy(max_retries=0),
            (failing_oracle, failing_oracle),
        )
        with pytest.raises(LadderExhaustedError):
            ladder(3.0)

    def test_exhausted_ladder_error_message(self):
        ladder = OracleLadder(
            ResiliencePolicy(rungs=(Rung("milp", "highs"),), max_retries=1),
            (failing_oracle,),
        )
        with pytest.raises(LadderExhaustedError) as excinfo:
            ladder(3.5)
        message = str(excinfo.value)
        assert "step 1" in message and "c=3.5" in message
        assert "milp:highs" in message and "synthetic failure" in message

    def test_runtime_errors_are_caught_too(self):
        def raises_runtime(c):
            raise RuntimeError("plain runtime failure")

        ladder = OracleLadder(two_rung_policy(), (raises_runtime, ok_oracle))
        assert ladder(0.0) == (True, "payload")
        assert ladder.degraded


class TestTimeouts:
    def test_slow_attempt_escalates(self):
        def slow(c):
            time.sleep(0.03)
            return True, "slow-answer"

        policy = two_rung_policy(step_timeout=0.005, max_retries=0)
        ladder = OracleLadder(policy, (slow, ok_oracle))
        assert ladder(1.0) == (True, "payload")
        events = ladder.report().events
        assert events[0].outcome == "timeout"
        assert "soft timeout" in events[0].message

    def test_fast_attempt_within_budget(self):
        policy = two_rung_policy(step_timeout=10.0)
        ladder = OracleLadder(policy, (ok_oracle, failing_oracle))
        assert ladder(1.0) == (True, "payload")
        assert ladder.report().failed_attempts == 0


class TestSticky:
    def test_sticky_skips_failed_rung_on_later_steps(self):
        ladder = OracleLadder(
            two_rung_policy(sticky=True, max_retries=0),
            (failing_oracle, ok_oracle),
        )
        ladder(1.0)
        ladder(2.0)
        events = ladder.report().events
        step2 = [e for e in events if e.step == 2]
        assert all(e.rung == 1 for e in step2)  # never consulted rung 0 again

    def test_non_sticky_retries_from_top(self):
        ladder = OracleLadder(
            two_rung_policy(sticky=False, max_retries=0),
            (failing_oracle, ok_oracle),
        )
        ladder(1.0)
        ladder(2.0)
        step2 = [e for e in ladder.report().events if e.step == 2]
        assert step2[0].rung == 0


class TestEvents:
    def test_event_fields(self):
        log = SolveEventLog()
        ladder = OracleLadder(
            two_rung_policy(max_retries=0), (failing_oracle, ok_oracle), log
        )
        ladder(2.5)
        failure, success = log.events
        assert (failure.step, failure.rung, failure.attempt) == (1, 0, 1)
        assert failure.outcome == "error"
        assert failure.oracle == "milp" and failure.backend == "highs"
        assert failure.feasible is None
        assert "synthetic failure" in failure.message
        assert success.outcome == "ok" and success.feasible is True
        assert success.oracle == "dp" and success.backend is None
        assert success.label == "dp"
        assert success.wall_seconds >= 0.0

    def test_log_summary_mentions_each_rung(self):
        log = SolveEventLog()
        ladder = OracleLadder(
            two_rung_policy(max_retries=0), (failing_oracle, ok_oracle), log
        )
        ladder(1.0)
        summary = log.summary()
        assert "milp:highs" in summary and "dp" in summary
        assert len(log.failures()) == 1
