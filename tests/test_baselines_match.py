"""Tests for the MATCH baseline."""

import numpy as np
import pytest

from repro.baselines.match import solve_match
from repro.baselines.rational import solve_sse
from repro.game.generator import random_game
from repro.game.payoffs import PayoffMatrix
from repro.game.ssg import SecurityGame


class TestSolveMatch:
    def test_best_response_holds(self):
        game = random_game(5, seed=0)
        res = solve_match(game, beta=1.0)
        ua = game.attacker_utilities(res.strategy)
        assert ua[res.attacked_target] == pytest.approx(ua.max(), abs=1e-6)

    def test_deviation_bound_holds(self):
        game = random_game(6, seed=1)
        beta = 0.8
        res = solve_match(game, beta=beta)
        ud = game.defender_utilities(res.strategy)
        ua = game.attacker_utilities(res.strategy)
        t = res.attacked_target
        for j in range(6):
            if j == t:
                continue
            assert ud[t] - ud[j] <= beta * (ua[t] - ua[j]) + 1e-6

    def test_large_beta_approaches_sse(self):
        game = random_game(5, seed=2)
        match = solve_match(game, beta=1e6)
        sse = solve_sse(game)
        assert match.value == pytest.approx(sse.value, abs=1e-4)

    def test_value_increases_with_beta(self):
        """Loosening the deviation bound can only help the nominal value."""
        game = random_game(5, seed=3)
        values = [solve_match(game, beta=b).value for b in (0.25, 1.0, 4.0, 1e6)]
        for a, b in zip(values, values[1:]):
            assert b >= a - 1e-7

    def test_beta_zero_equalises_attacked_utilities(self):
        """With beta = 0 the defender cannot be worse off anywhere the
        attacker might go: U^d_t <= U^d_j for all j."""
        game = random_game(4, seed=4, zero_sum=True)
        res = solve_match(game, beta=0.0)
        ud = game.defender_utilities(res.strategy)
        assert ud[res.attacked_target] <= ud.min() + 1e-6

    def test_strategy_feasible(self):
        game = random_game(7, num_resources=2, seed=5)
        res = solve_match(game, beta=1.0)
        assert game.strategy_space.contains(res.strategy, atol=1e-6)

    def test_negative_beta_rejected(self):
        game = random_game(3, seed=6)
        with pytest.raises(ValueError, match="beta"):
            solve_match(game, beta=-1.0)

    def test_symmetric_game(self):
        payoffs = PayoffMatrix(
            defender_reward=[1.0, 1.0],
            defender_penalty=[-1.0, -1.0],
            attacker_reward=[1.0, 1.0],
            attacker_penalty=[-1.0, -1.0],
        )
        game = SecurityGame(payoffs, num_resources=1)
        res = solve_match(game, beta=1.0)
        np.testing.assert_allclose(res.strategy, [0.5, 0.5], atol=1e-6)

    def test_match_more_cautious_than_sse_under_deviation(self):
        """Against a deviating attacker, MATCH's floor beats SSE's."""
        game = random_game(5, seed=7, zero_sum=True)
        match = solve_match(game, beta=0.5)
        sse = solve_sse(game)
        ud_match = game.defender_utilities(match.strategy)
        ud_sse = game.defender_utilities(sse.strategy)
        assert ud_match.min() >= ud_sse.min() - 1e-6
