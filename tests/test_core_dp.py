"""Tests for the DP oracle (repro.core.dp) and its CUBIS integration."""

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.behavior.interval import IntervalSUQR
from repro.core.cubis import solve_cubis
from repro.core.dp import (
    _maximize_separable_on_grid_loop,
    maximize_separable_on_grid,
    maximize_separable_on_grid_batch,
)
from repro.game.generator import random_interval_game, table1_game


def brute_force_grid(phi, budget):
    """Exhaustive enumeration of grid allocations (tiny instances only)."""
    t, cols = phi.shape
    k = cols - 1
    best = -np.inf
    best_units = None
    for units in itertools.product(range(k + 1), repeat=t):
        if sum(units) > budget:
            continue
        val = sum(phi[j, a] for j, a in enumerate(units))
        if val > best:
            best, best_units = val, units
    return best, np.array(best_units)


class TestMaximizeSeparableOnGrid:
    def test_single_target(self):
        phi = np.array([[0.0, 1.0, 3.0, 2.0]])
        alloc = maximize_separable_on_grid(phi, budget_units=3)
        assert alloc.value == 3.0
        assert alloc.units[0] == 2

    def test_budget_binds(self):
        phi = np.array([[0.0, 5.0], [0.0, 4.0], [0.0, 3.0]])
        alloc = maximize_separable_on_grid(phi, budget_units=2)
        assert alloc.value == 9.0
        assert alloc.units.sum() == 2

    def test_slack_allowed_when_phi_decreasing(self):
        """If allocating hurts, the DP leaves budget unused."""
        phi = np.array([[0.0, -1.0, -2.0]])
        alloc = maximize_separable_on_grid(phi, budget_units=2)
        assert alloc.value == 0.0
        assert alloc.units[0] == 0

    def test_zero_budget(self):
        phi = np.array([[1.0, 9.0], [2.0, 9.0]])
        alloc = maximize_separable_on_grid(phi, budget_units=0)
        assert alloc.value == 3.0
        np.testing.assert_array_equal(alloc.units, [0, 0])

    def test_budget_exceeding_capacity_clipped(self):
        phi = np.array([[0.0, 1.0], [0.0, 1.0]])
        alloc = maximize_separable_on_grid(phi, budget_units=100)
        assert alloc.value == 2.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget_units"):
            maximize_separable_on_grid(np.zeros((1, 2)), -1)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            maximize_separable_on_grid(np.zeros(3), 1)

    def test_coverage_conversion(self):
        phi = np.array([[0.0, 0.0, 1.0]])
        alloc = maximize_separable_on_grid(phi, budget_units=2)
        np.testing.assert_allclose(alloc.coverage(num_segments=2), [1.0])

    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(0, 8),
        st.integers(0, 10**6),
    )
    def test_matches_brute_force(self, t, k, budget, seed):
        rng = np.random.default_rng(seed)
        phi = rng.normal(size=(t, k + 1)) * 3
        alloc = maximize_separable_on_grid(phi, budget)
        bf_value, _ = brute_force_grid(phi, min(budget, t * k))
        assert alloc.value == pytest.approx(bf_value, abs=1e-9)
        assert alloc.units.sum() <= budget
        direct = sum(phi[j, a] for j, a in enumerate(alloc.units))
        assert alloc.value == pytest.approx(direct, abs=1e-9)


class TestCubisDPOracle:
    def test_table1_dp_converges_to_milp(self):
        """The DP snaps strategies to the grid, so it needs a much finer K
        than the MILP to resolve the kink at the robust optimum (see the
        module docstring) — but it must converge there."""
        game = table1_game()
        uncertainty = IntervalSUQR(
            game.payoffs, w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9)
        )
        milp = solve_cubis(game, uncertainty, num_segments=25, epsilon=1e-4)
        dp = solve_cubis(game, uncertainty, num_segments=200, epsilon=1e-4, oracle="dp")
        assert dp.worst_case_value == pytest.approx(milp.worst_case_value, abs=0.1)
        np.testing.assert_allclose(dp.strategy, milp.strategy, atol=0.05)

    def test_table1_dp_error_shrinks_with_k(self):
        game = table1_game()
        uncertainty = IntervalSUQR(
            game.payoffs, w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9)
        )
        values = [
            solve_cubis(
                game, uncertainty, num_segments=k, epsilon=1e-4, oracle="dp"
            ).worst_case_value
            for k in (25, 100, 400)
        ]
        assert values[2] >= values[0] - 1e-9
        assert values[2] == pytest.approx(-0.908, abs=0.05)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_games_dp_close_to_milp(self, seed):
        game = random_interval_game(6, payoff_halfwidth=0.5, seed=seed)
        uncertainty = IntervalSUQR(
            game.payoffs, w1=(-4.0, -2.0), w2=(0.6, 0.9), w3=(0.3, 0.6),
            convention="tight",
        )
        milp = solve_cubis(game, uncertainty, num_segments=12, epsilon=0.01)
        dp = solve_cubis(game, uncertainty, num_segments=96, epsilon=0.01, oracle="dp")
        assert dp.worst_case_value == pytest.approx(milp.worst_case_value, abs=0.15)

    def test_dp_strategy_feasible(self, small_interval_game, small_uncertainty):
        dp = solve_cubis(
            small_interval_game, small_uncertainty, num_segments=10, epsilon=0.01,
            oracle="dp",
        )
        assert small_interval_game.strategy_space.contains(dp.strategy, atol=1e-6)

    def test_invalid_oracle(self, small_interval_game, small_uncertainty):
        with pytest.raises(ValueError, match="oracle"):
            solve_cubis(small_interval_game, small_uncertainty, oracle="magic")


class TestVectorisedTransitionMatchesLoop:
    """The sliding-window max-plus transition must replay the reference
    loop bit for bit — same value, same units, same tie-breaks."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_instances_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        t = int(rng.integers(1, 9))
        k = int(rng.integers(1, 13))
        budget = int(rng.integers(0, t * k + 3))
        phi = rng.normal(size=(t, k + 1)).cumsum(axis=1)
        fast = maximize_separable_on_grid(phi, budget)
        slow = _maximize_separable_on_grid_loop(phi, budget)
        assert fast.value == slow.value
        np.testing.assert_array_equal(fast.units, slow.units)

    @pytest.mark.parametrize("seed", range(10))
    def test_tie_heavy_instances_bit_identical(self, seed):
        # Rounding phi to one decimal forces many exact DP ties; argmax's
        # first-occurrence rule must award them to the smallest
        # allocation exactly like the loop's strict `>` update.
        rng = np.random.default_rng(1000 + seed)
        t = int(rng.integers(2, 7))
        k = int(rng.integers(2, 9))
        budget = int(rng.integers(1, t * k + 1))
        phi = np.round(rng.normal(size=(t, k + 1)), 1)
        fast = maximize_separable_on_grid(phi, budget)
        slow = _maximize_separable_on_grid_loop(phi, budget)
        assert fast.value == slow.value
        np.testing.assert_array_equal(fast.units, slow.units)

    def test_all_zero_phi_prefers_empty_allocation(self):
        phi = np.zeros((3, 5))
        fast = maximize_separable_on_grid(phi, 6)
        slow = _maximize_separable_on_grid_loop(phi, 6)
        np.testing.assert_array_equal(fast.units, slow.units)
        np.testing.assert_array_equal(fast.units, np.zeros(3, dtype=np.int64))


class TestBatchKernelMatchesScalar:
    """The stacked fleet kernel must equal per-game scalar calls bitwise
    — same values, same units, same tie-breaks at every batch index."""

    @pytest.mark.parametrize("seed", range(15))
    def test_random_batches_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        g = int(rng.integers(1, 6))
        t = int(rng.integers(1, 8))
        k = int(rng.integers(1, 11))
        budget = int(rng.integers(0, t * k + 3))
        phi = rng.normal(size=(g, t, k + 1)).cumsum(axis=2)
        batched = maximize_separable_on_grid_batch(phi, budget)
        assert len(batched) == g
        for game_index in range(g):
            scalar = maximize_separable_on_grid(phi[game_index], budget)
            assert batched[game_index].value == scalar.value
            np.testing.assert_array_equal(
                batched[game_index].units, scalar.units
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_tie_heavy_batches_bit_identical(self, seed):
        rng = np.random.default_rng(2000 + seed)
        g = int(rng.integers(2, 5))
        t = int(rng.integers(2, 6))
        k = int(rng.integers(2, 8))
        budget = int(rng.integers(1, t * k + 1))
        phi = np.round(rng.normal(size=(g, t, k + 1)), 1)
        batched = maximize_separable_on_grid_batch(phi, budget)
        for game_index in range(g):
            scalar = maximize_separable_on_grid(phi[game_index], budget)
            assert batched[game_index].value == scalar.value
            np.testing.assert_array_equal(
                batched[game_index].units, scalar.units
            )

    def test_empty_batch(self):
        assert maximize_separable_on_grid_batch(
            np.zeros((0, 3, 4)), 5
        ) == []

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="phi_batch"):
            maximize_separable_on_grid_batch(np.zeros((2, 3)), 1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget_units"):
            maximize_separable_on_grid_batch(np.zeros((1, 1, 2)), -1)
