"""Unit tests for repro.behavior.sampling."""

import numpy as np
import pytest

from repro.behavior.sampling import corner_attacker_types, sample_attacker_types


class TestSampleAttackerTypes:
    def test_count(self, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 5, seed=0)
        assert len(types) == 5

    def test_zero_rejected(self, small_uncertainty):
        with pytest.raises(ValueError, match=">= 1"):
            sample_attacker_types(small_uncertainty, 0)

    def test_deterministic(self, small_uncertainty):
        a = sample_attacker_types(small_uncertainty, 3, seed=7)
        b = sample_attacker_types(small_uncertainty, 3, seed=7)
        for ma, mb in zip(a, b):
            assert ma.weights == mb.weights

    def test_weights_in_boxes(self, small_uncertainty):
        w1, w2, w3 = small_uncertainty.weight_boxes
        for model in sample_attacker_types(small_uncertainty, 10, seed=1):
            assert w1.lo <= model.weights.w1 <= w1.hi
            assert w2.lo <= model.weights.w2 <= w2.hi
            assert w3.lo <= model.weights.w3 <= w3.hi

    def test_payoffs_in_intervals(self, small_uncertainty):
        p = small_uncertainty.payoffs
        for model in sample_attacker_types(small_uncertainty, 10, seed=2):
            assert np.all(model.payoffs.attacker_reward >= p.attacker_reward_lo)
            assert np.all(model.payoffs.attacker_reward <= p.attacker_reward_hi)
            assert np.all(model.payoffs.attacker_penalty >= p.attacker_penalty_lo)
            assert np.all(model.payoffs.attacker_penalty <= p.attacker_penalty_hi)

    def test_types_inside_tight_band(self, small_uncertainty):
        """Every sampled type's F must lie in the tight uncertainty band."""
        x = np.full(small_uncertainty.num_targets, 0.3)
        lo = small_uncertainty.lower(x)
        hi = small_uncertainty.upper(x)
        for model in sample_attacker_types(small_uncertainty, 8, seed=3):
            f = model.attack_weights(x)
            assert np.all(f >= lo * (1 - 1e-9))
            assert np.all(f <= hi * (1 + 1e-9))


class TestCornerAttackerTypes:
    def test_count_with_midpoint(self, small_uncertainty):
        types = corner_attacker_types(small_uncertainty)
        assert len(types) == 9  # 8 corners + midpoint

    def test_count_without_midpoint(self, small_uncertainty):
        types = corner_attacker_types(small_uncertainty, include_midpoint=False)
        assert len(types) == 8

    def test_corners_use_extreme_weights(self, small_uncertainty):
        w1, w2, w3 = small_uncertainty.weight_boxes
        corner_w1 = {m.weights.w1 for m in corner_attacker_types(small_uncertainty, include_midpoint=False)}
        assert corner_w1 == {w1.lo, w1.hi}

    def test_all_lo_corner_uses_lo_payoffs(self, small_uncertainty):
        p = small_uncertainty.payoffs
        w1, w2, w3 = small_uncertainty.weight_boxes
        types = corner_attacker_types(small_uncertainty, include_midpoint=False)
        all_lo = [
            m
            for m in types
            if m.weights.w1 == w1.lo and m.weights.w2 == w2.lo and m.weights.w3 == w3.lo
        ]
        assert len(all_lo) == 1
        np.testing.assert_array_equal(all_lo[0].payoffs.attacker_reward, p.attacker_reward_lo)

    def test_defender_payoffs_preserved(self, small_uncertainty):
        p = small_uncertainty.payoffs
        for m in corner_attacker_types(small_uncertainty):
            np.testing.assert_array_equal(m.payoffs.defender_reward, p.defender_reward)
