"""Unit tests for repro.behavior.sampling."""

import numpy as np
import pytest

from repro.behavior.sampling import corner_attacker_types, sample_attacker_types


class TestSampleAttackerTypes:
    def test_count(self, small_uncertainty):
        types = sample_attacker_types(small_uncertainty, 5, seed=0)
        assert len(types) == 5

    def test_zero_rejected(self, small_uncertainty):
        with pytest.raises(ValueError, match=">= 1"):
            sample_attacker_types(small_uncertainty, 0)

    def test_deterministic(self, small_uncertainty):
        a = sample_attacker_types(small_uncertainty, 3, seed=7)
        b = sample_attacker_types(small_uncertainty, 3, seed=7)
        for ma, mb in zip(a, b):
            assert ma.weights == mb.weights

    def test_weights_in_boxes(self, small_uncertainty):
        w1, w2, w3 = small_uncertainty.weight_boxes
        for model in sample_attacker_types(small_uncertainty, 10, seed=1):
            assert w1.lo <= model.weights.w1 <= w1.hi
            assert w2.lo <= model.weights.w2 <= w2.hi
            assert w3.lo <= model.weights.w3 <= w3.hi

    def test_payoffs_in_intervals(self, small_uncertainty):
        p = small_uncertainty.payoffs
        for model in sample_attacker_types(small_uncertainty, 10, seed=2):
            assert np.all(model.payoffs.attacker_reward >= p.attacker_reward_lo)
            assert np.all(model.payoffs.attacker_reward <= p.attacker_reward_hi)
            assert np.all(model.payoffs.attacker_penalty >= p.attacker_penalty_lo)
            assert np.all(model.payoffs.attacker_penalty <= p.attacker_penalty_hi)

    def test_types_inside_tight_band(self, small_uncertainty):
        """Every sampled type's F must lie in the tight uncertainty band."""
        x = np.full(small_uncertainty.num_targets, 0.3)
        lo = small_uncertainty.lower(x)
        hi = small_uncertainty.upper(x)
        for model in sample_attacker_types(small_uncertainty, 8, seed=3):
            f = model.attack_weights(x)
            assert np.all(f >= lo * (1 - 1e-9))
            assert np.all(f <= hi * (1 + 1e-9))


class TestCornerAttackerTypes:
    def test_count_with_midpoint(self, small_uncertainty):
        types = corner_attacker_types(small_uncertainty)
        assert len(types) == 9  # 8 corners + midpoint

    def test_count_without_midpoint(self, small_uncertainty):
        types = corner_attacker_types(small_uncertainty, include_midpoint=False)
        assert len(types) == 8

    def test_corners_use_extreme_weights(self, small_uncertainty):
        w1, w2, w3 = small_uncertainty.weight_boxes
        corner_w1 = {m.weights.w1 for m in corner_attacker_types(small_uncertainty, include_midpoint=False)}
        assert corner_w1 == {w1.lo, w1.hi}

    def test_all_lo_corner_uses_lo_payoffs(self, small_uncertainty):
        p = small_uncertainty.payoffs
        w1, w2, w3 = small_uncertainty.weight_boxes
        types = corner_attacker_types(small_uncertainty, include_midpoint=False)
        all_lo = [
            m
            for m in types
            if m.weights.w1 == w1.lo and m.weights.w2 == w2.lo and m.weights.w3 == w3.lo
        ]
        assert len(all_lo) == 1
        np.testing.assert_array_equal(all_lo[0].payoffs.attacker_reward, p.attacker_reward_lo)

    def test_defender_payoffs_preserved(self, small_uncertainty):
        p = small_uncertainty.payoffs
        for m in corner_attacker_types(small_uncertainty):
            np.testing.assert_array_equal(m.payoffs.defender_reward, p.defender_reward)


class TestShrinkFactors:
    def test_ladder_shape_and_endpoints(self):
        from repro.behavior.sampling import shrink_factors

        factors = shrink_factors(5, final=0.5)
        assert len(factors) == 5
        assert np.all(np.diff(factors) < 0)
        assert np.all(factors < 1.0)
        assert factors[-1] == pytest.approx(0.5)

    def test_single_step_is_final(self):
        from repro.behavior.sampling import shrink_factors

        assert shrink_factors(1, final=0.3)[0] == pytest.approx(0.3)

    def test_validation(self):
        from repro.behavior.sampling import shrink_factors

        with pytest.raises(ValueError, match="num_steps"):
            shrink_factors(0)
        with pytest.raises(ValueError, match="final"):
            shrink_factors(3, final=1.0)


class TestIntervalDriftSequence:
    def base_model(self):
        from repro.behavior.interval import IntervalSUQR
        from repro.game.generator import random_interval_game

        game = random_interval_game(4, seed=9)
        return IntervalSUQR(
            game.payoffs, w1=(-4.0, -1.0), w2=(0.6, 0.9), w3=(0.3, 0.6),
            convention="tight",
        )

    def test_snapshots_carry_factors(self):
        from repro.behavior.sampling import interval_drift_sequence

        base = self.base_model()
        seq = interval_drift_sequence(base, [0.9, 0.7, 0.5])
        assert [m.factor for m in seq] == [0.9, 0.7, 0.5]
        assert all(m.base is base for m in seq)

    def test_decreasing_ladder_is_pointwise_nested(self):
        """Successive snapshots nest: L rises and U falls pointwise — the
        pure-shrink regime the resolve engine's bracket reuse rests on."""
        from repro.behavior.sampling import interval_drift_sequence, shrink_factors

        base = self.base_model()
        pts = np.linspace(0.0, 1.0, 7)
        seq = interval_drift_sequence(base, shrink_factors(4))
        for narrow, wide in zip(seq[1:], seq[:-1]):
            assert np.all(narrow.lower_on_grid(pts) >= wide.lower_on_grid(pts))
            assert np.all(narrow.upper_on_grid(pts) <= wide.upper_on_grid(pts))

    def test_validation(self):
        from repro.behavior.sampling import interval_drift_sequence

        with pytest.raises(ValueError, match="non-empty"):
            interval_drift_sequence(self.base_model(), [])


class TestEstimatedDriftSequence:
    def setup_truth(self):
        from repro.behavior.suqr import SUQR, SUQRWeights
        from repro.game.generator import random_game

        game = random_game(4, num_resources=1, seed=21)
        truth = SUQR(game.payoffs, SUQRWeights(-2.5, 0.7, 0.5))
        strategies = game.strategy_space.random_batch(5, seed=3)
        return truth, strategies

    def test_radii_shrink_with_sample_size(self):
        from repro.behavior.sampling import estimated_drift_sequence

        truth, strategies = self.setup_truth()
        estimates = estimated_drift_sequence(
            truth, strategies, [50, 200, 800], seed=0
        )
        assert [e.num_observations for e in estimates] == [50, 200, 800]
        radii = [e.radius for e in estimates]
        assert radii[0] == pytest.approx(2.0 * radii[1])
        assert radii[1] == pytest.approx(2.0 * radii[2])

    def test_slope_defaults_to_truth_w1(self):
        from repro.behavior.sampling import estimated_drift_sequence

        truth, strategies = self.setup_truth()
        (estimate,) = estimated_drift_sequence(truth, strategies, [40], seed=1)
        assert estimate.slope == pytest.approx(truth.weights.w1)

    def test_validation(self):
        from repro.behavior.sampling import estimated_drift_sequence

        truth, strategies = self.setup_truth()
        with pytest.raises(ValueError, match="non-empty"):
            estimated_drift_sequence(truth, strategies, [])
        with pytest.raises(ValueError, match="increasing"):
            estimated_drift_sequence(truth, strategies, [100, 100])
        with pytest.raises(ValueError, match="2-D"):
            estimated_drift_sequence(truth, np.zeros(4), [10])
