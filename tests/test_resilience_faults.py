"""Tests for the deterministic fault-injection harness."""

import time

import numpy as np
import pytest

from repro.resilience.faults import FAULT_MODES, FaultInjector, injected_policy
from repro.resilience.policy import ResiliencePolicy, Rung
from repro.solvers.milp_backend import MILPProblem, solve_milp


def tiny_problem() -> MILPProblem:
    """max x0 + x1 s.t. x0 + x1 <= 1.5, box [0, 1] (as a minimisation)."""
    return MILPProblem(
        c=np.array([-1.0, -1.0]),
        A_ub=np.array([[1.0, 1.0]]),
        b_ub=np.array([1.5]),
        ub=np.array([1.0, 1.0]),
    )


class TestSchedule:
    def test_determinism(self):
        a = FaultInjector(0.5, seed=42)
        b = FaultInjector(0.5, seed=42)
        wrapped_a, wrapped_b = a.wrap("highs"), b.wrap("highs")
        for _ in range(30):
            wrapped_a(tiny_problem())
            wrapped_b(tiny_problem())
        assert a.history == b.history
        assert a.faults == b.faults > 0

    def test_different_seeds_differ(self):
        a = FaultInjector(0.5, seed=1)
        b = FaultInjector(0.5, seed=2)
        wa, wb = a.wrap("highs"), b.wrap("highs")
        for _ in range(30):
            wa(tiny_problem())
            wb(tiny_problem())
        assert a.history != b.history

    def test_rate_zero_never_faults(self):
        injector = FaultInjector(0.0, seed=0)
        backend = injector.wrap("highs")
        for _ in range(10):
            assert backend(tiny_problem()).optimal
        assert injector.faults == 0

    def test_rate_one_always_faults(self):
        injector = FaultInjector(1.0, seed=0)
        backend = injector.wrap("highs")
        for _ in range(10):
            backend(tiny_problem())
        assert injector.faults == 10

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="failure_rate"):
            FaultInjector(1.5)
        with pytest.raises(ValueError, match="fault modes"):
            FaultInjector(0.5, modes=("explode",))


class TestModes:
    def test_error_mode(self):
        backend = FaultInjector(1.0, modes=("error",), seed=0).wrap("highs")
        result = backend(tiny_problem())
        assert result.status == "error" and "injected" in result.message

    def test_infeasible_mode(self):
        backend = FaultInjector(1.0, modes=("infeasible",), seed=0).wrap("highs")
        assert backend(tiny_problem()).status == "infeasible"

    def test_nan_mode(self):
        backend = FaultInjector(1.0, modes=("nan",), seed=0).wrap("highs")
        result = backend(tiny_problem())
        assert result.optimal and np.isnan(result.objective)
        assert result.x is not None  # the solution itself is intact

    def test_perturb_mode(self):
        clean = solve_milp(tiny_problem(), backend="highs")
        backend = FaultInjector(1.0, modes=("perturb",), seed=0).wrap("highs")
        result = backend(tiny_problem())
        assert result.optimal
        assert not np.allclose(result.x, clean.x)
        # The corruption is large enough to violate the unit box/budget.
        assert result.x.sum() > clean.x.sum() + 0.1

    def test_slow_mode(self):
        backend = FaultInjector(
            1.0, modes=("slow",), seed=0, slow_seconds=0.03
        ).wrap("highs")
        start = time.perf_counter()
        result = backend(tiny_problem())
        assert time.perf_counter() - start >= 0.03
        assert result.optimal  # slow solves still return the right answer


class TestIntegration:
    def test_usable_as_solve_milp_backend(self):
        injector = FaultInjector(0.0, seed=0)
        result = solve_milp(tiny_problem(), backend=injector.wrap("bnb"))
        assert result.optimal
        assert result.objective == pytest.approx(-1.5)

    def test_injected_policy_wraps_milp_rungs_only(self):
        injector = FaultInjector(1.0, modes=("error",), seed=0)
        policy = injected_policy(injector)
        assert [r.oracle for r in policy.rungs] == ["milp", "milp", "dp"]
        assert all(callable(r.backend) for r in policy.rungs[:2])
        assert policy.rungs[2].backend is None

    def test_injected_policy_preserves_settings(self):
        base = ResiliencePolicy(
            rungs=(Rung("milp", "bnb"),), max_retries=3, step_timeout=2.0,
            sticky=True,
        )
        policy = injected_policy(FaultInjector(0.5), base)
        assert policy.max_retries == 3
        assert policy.step_timeout == 2.0
        assert policy.sticky is True
        assert len(policy.rungs) == 1
