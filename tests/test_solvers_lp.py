"""Unit tests for repro.solvers.lp."""

import numpy as np
import pytest

from repro.solvers.lp import solve_lp


class TestSolveLP:
    def test_simple_minimisation(self):
        # min x + y s.t. x + y >= 1, x,y >= 0  ->  value 1.
        res = solve_lp(
            [1.0, 1.0],
            A_ub=[[-1.0, -1.0]],
            b_ub=[-1.0],
            bounds=[(0, None), (0, None)],
        )
        assert res.success
        assert res.objective == pytest.approx(1.0)

    def test_maximisation_sign_handling(self):
        # max x s.t. x <= 3.
        res = solve_lp([1.0], bounds=[(0, 3)], maximize=True)
        assert res.success
        assert res.objective == pytest.approx(3.0)
        assert res.x[0] == pytest.approx(3.0)

    def test_equality_constraints(self):
        res = solve_lp(
            [1.0, 2.0],
            A_eq=[[1.0, 1.0]],
            b_eq=[1.0],
            bounds=[(0, 1), (0, 1)],
        )
        assert res.success
        np.testing.assert_allclose(res.x, [1.0, 0.0], atol=1e-8)

    def test_infeasible_detected(self):
        res = solve_lp(
            [1.0],
            A_ub=[[1.0]],
            b_ub=[-1.0],
            bounds=[(0, None)],
        )
        assert res.infeasible
        assert not res.success
        assert res.x is None and res.objective is None

    def test_unbounded_detected(self):
        res = solve_lp([-1.0], bounds=[(0, None)])
        assert res.unbounded

    def test_degenerate_single_point(self):
        res = solve_lp([5.0], bounds=[(2.0, 2.0)])
        assert res.success
        assert res.objective == pytest.approx(10.0)

    def test_result_is_array(self):
        res = solve_lp([1.0, 1.0], bounds=[(0, 1), (0, 1)])
        assert isinstance(res.x, np.ndarray)
