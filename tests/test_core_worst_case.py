"""Unit + property tests for the inner worst-case problem.

The central cross-check: three independent algorithms (vertex enumeration,
the paper's LP (6-8), and the dual root) must agree on random instances.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.worst_case import (
    evaluate_worst_case,
    worst_case_dual_root,
    worst_case_lp,
    worst_case_response,
)


@st.composite
def random_instance(draw):
    n = draw(st.integers(1, 8))
    fl_u = st.floats(-10, 10, allow_nan=False)
    ud = np.array([draw(fl_u) for _ in range(n)])
    lo = np.array([draw(st.floats(0.01, 5.0)) for _ in range(n)])
    width = np.array([draw(st.floats(0.0, 5.0)) for _ in range(n)])
    return ud, lo, lo + width


class TestCrossMethodAgreement:
    @given(random_instance())
    def test_enumeration_matches_lp(self, instance):
        ud, lo, hi = instance
        fast = worst_case_response(ud, lo, hi)
        lp = worst_case_lp(ud, lo, hi)
        assert fast.value == pytest.approx(lp.value, abs=1e-6)

    @given(random_instance())
    def test_enumeration_matches_dual_root(self, instance):
        ud, lo, hi = instance
        fast = worst_case_response(ud, lo, hi)
        root = worst_case_dual_root(ud, lo, hi)
        assert fast.value == pytest.approx(root, abs=1e-8)


class TestWorstCaseResponse:
    def test_degenerate_intervals_give_nominal(self):
        """With L = U there is no uncertainty: the value is the point
        model's expected utility."""
        ud = np.array([1.0, -2.0, 3.0])
        f = np.array([0.5, 1.5, 1.0])
        sol = worst_case_response(ud, f, f)
        expected = float(f @ ud / f.sum())
        assert sol.value == pytest.approx(expected)
        np.testing.assert_allclose(sol.attractiveness, f)

    def test_adversary_raises_weight_on_bad_targets(self):
        ud = np.array([-5.0, 5.0])
        lo = np.array([1.0, 1.0])
        hi = np.array([3.0, 3.0])
        sol = worst_case_response(ud, lo, hi)
        # Worst case: F high on the harmful target, low on the good one.
        np.testing.assert_allclose(sol.attractiveness, [3.0, 1.0])
        assert sol.value == pytest.approx((3 * -5 + 1 * 5) / 4)

    def test_single_target(self):
        sol = worst_case_response([2.5], [1.0], [4.0])
        assert sol.value == pytest.approx(2.5)
        np.testing.assert_allclose(sol.attack_distribution, [1.0])

    def test_distribution_sums_to_one(self):
        ud = np.array([0.0, 1.0, -1.0, 2.0])
        lo = np.full(4, 0.5)
        hi = np.full(4, 2.0)
        sol = worst_case_response(ud, lo, hi)
        assert sol.attack_distribution.sum() == pytest.approx(1.0)

    def test_value_between_min_and_max_utility(self):
        ud = np.array([-3.0, 0.0, 4.0])
        lo = np.array([0.1, 0.2, 0.3])
        hi = np.array([1.0, 2.0, 3.0])
        sol = worst_case_response(ud, lo, hi)
        assert ud.min() - 1e-12 <= sol.value <= ud.max() + 1e-12

    def test_value_below_any_feasible_realisation(self, rng):
        ud = rng.normal(size=5) * 4
        lo = rng.uniform(0.1, 1.0, size=5)
        hi = lo + rng.uniform(0.0, 2.0, size=5)
        sol = worst_case_response(ud, lo, hi)
        for _ in range(50):
            f = rng.uniform(lo, hi)
            assert sol.value <= f @ ud / f.sum() + 1e-9

    def test_attractiveness_at_interval_endpoints(self, rng):
        ud = rng.normal(size=6)
        lo = rng.uniform(0.1, 1.0, size=6)
        hi = lo + rng.uniform(0.01, 2.0, size=6)
        sol = worst_case_response(ud, lo, hi)
        at_lo = np.isclose(sol.attractiveness, lo)
        at_hi = np.isclose(sol.attractiveness, hi)
        assert np.all(at_lo | at_hi)

    def test_widening_intervals_never_helps(self, rng):
        """Monotonicity: a larger uncertainty set can only lower the value."""
        ud = rng.normal(size=5) * 3
        lo = rng.uniform(0.2, 1.0, size=5)
        hi = lo + rng.uniform(0.1, 1.0, size=5)
        narrow = worst_case_response(ud, lo, hi).value
        wide = worst_case_response(ud, lo * 0.8, hi * 1.25).value
        assert wide <= narrow + 1e-9

    def test_input_validation(self):
        with pytest.raises(ValueError, match="positive"):
            worst_case_response([1.0], [0.0], [1.0])
        with pytest.raises(ValueError, match="lower <= upper"):
            worst_case_response([1.0], [2.0], [1.0])
        with pytest.raises(ValueError, match="one shape"):
            worst_case_response([1.0, 2.0], [1.0], [1.0])


class TestWorstCaseLP:
    def test_z_is_reciprocal_of_total(self):
        ud = np.array([1.0, -1.0])
        lo = np.array([0.5, 0.5])
        hi = np.array([2.0, 2.0])
        sol = worst_case_lp(ud, lo, hi)
        # F = y / z must lie in the intervals.
        assert np.all(sol.attractiveness >= lo - 1e-6)
        assert np.all(sol.attractiveness <= hi + 1e-6)


class TestWorstCaseDualRoot:
    def test_equal_utilities_shortcut(self):
        assert worst_case_dual_root([2.0, 2.0], [1.0, 1.0], [3.0, 3.0]) == 2.0

    def test_matches_manual_two_target(self):
        """Hand-checkable 2-target case: u = (0, 1), L = (1, 1), U = (3, 3).
        Worst case puts F=3 on the u=0 target: value 3*0+1*1 over 4 = 0.25."""
        val = worst_case_dual_root([0.0, 1.0], [1.0, 1.0], [3.0, 3.0])
        assert val == pytest.approx(0.25)


class TestEvaluateWorstCase:
    def test_wrapper_consistency(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        sol = evaluate_worst_case(small_interval_game, small_uncertainty, x)
        direct = worst_case_response(
            small_interval_game.defender_utilities(x),
            small_uncertainty.lower(x),
            small_uncertainty.upper(x),
        )
        assert sol.value == direct.value

    def test_more_coverage_never_hurts_uniformly(self, small_interval_game, small_uncertainty):
        """Scaling the uniform strategy up (more resources) improves the
        worst case — coverage is good for the defender."""
        space = small_interval_game.strategy_space
        low = np.full(4, 0.2)
        high = np.full(4, 0.375)
        v_low = evaluate_worst_case(small_interval_game, small_uncertainty, low).value
        v_high = evaluate_worst_case(small_interval_game, small_uncertainty, high).value
        assert v_high >= v_low - 1e-9
