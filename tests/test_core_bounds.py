"""Tests for the Theorem-1 bound instantiation (repro.core.bounds)."""

import numpy as np
import pytest

from repro.behavior.interval import IntervalSUQR
from repro.core.bounds import bound_constants, certified_gap
from repro.core.cubis import solve_cubis
from repro.game.generator import random_interval_game, table1_game


@pytest.fixture(scope="module")
def setup():
    game = table1_game()
    uncertainty = IntervalSUQR(
        game.payoffs, w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9)
    )
    return game, uncertainty


class TestBoundConstants:
    def test_all_positive(self, setup):
        game, uncertainty = setup
        c = bound_constants(game, uncertainty)
        assert c.numerator_lipschitz > 0
        assert c.denominator_lipschitz > 0
        assert c.denominator_min > 0
        assert c.numerator_max > 0
        assert c.c1 > 0 and c.c2 > 0

    def test_denominator_min_is_sum_of_l_at_one(self, setup):
        game, uncertainty = setup
        c = bound_constants(game, uncertainty)
        expected = uncertainty.lower(np.ones(2)).sum()
        assert c.denominator_min == pytest.approx(expected, rel=1e-6)

    def test_target_mismatch(self, setup):
        _, uncertainty = setup
        other = random_interval_game(5, seed=0)
        with pytest.raises(ValueError, match="target count"):
            bound_constants(other, uncertainty)

    def test_wider_uncertainty_larger_constants(self, setup):
        game, _ = setup
        narrow = IntervalSUQR(
            game.payoffs, w1=(-4.5, -3.5), w2=(0.7, 0.8), w3=(0.6, 0.7)
        )
        wide = IntervalSUQR(
            game.payoffs, w1=(-6.0, -2.0), w2=(0.5, 1.0), w3=(0.4, 0.9)
        )
        cn = bound_constants(game, narrow)
        cw = bound_constants(game, wide)
        assert cw.numerator_max >= cn.numerator_max


class TestCertifiedGap:
    def test_decreases_in_k(self, setup):
        game, uncertainty = setup
        c = bound_constants(game, uncertainty)
        gaps = [certified_gap(c, 1e-3, k) for k in (2, 4, 8, 16, 32)]
        assert all(gaps[i + 1] < gaps[i] for i in range(len(gaps) - 1))

    def test_linear_in_epsilon(self, setup):
        game, uncertainty = setup
        c = bound_constants(game, uncertainty)
        g1 = certified_gap(c, 0.1, 10)
        g2 = certified_gap(c, 0.2, 10)
        assert g2 - g1 == pytest.approx(0.1)

    def test_one_over_k_shape(self, setup):
        game, uncertainty = setup
        c = bound_constants(game, uncertainty)
        approx_term = lambda k: certified_gap(c, 1e-9, k) - 1e-9
        assert approx_term(10) == pytest.approx(2 * approx_term(20), rel=1e-6)

    def test_validation(self, setup):
        game, uncertainty = setup
        c = bound_constants(game, uncertainty)
        with pytest.raises(ValueError):
            certified_gap(c, 0.0, 10)
        with pytest.raises(ValueError):
            certified_gap(c, 0.1, 0)

    def test_certificate_covers_measured_gap(self, setup):
        """The certified bound must dominate the measured optimality gap
        (Theorem 1, with the reference computed at high resolution)."""
        game, uncertainty = setup
        constants = bound_constants(game, uncertainty)
        reference = solve_cubis(game, uncertainty, num_segments=50, epsilon=1e-5)
        for k in (3, 6, 12):
            result = solve_cubis(game, uncertainty, num_segments=k, epsilon=1e-3)
            measured = reference.worst_case_value - result.worst_case_value
            assert measured <= certified_gap(constants, 1e-3, k) + 1e-6
