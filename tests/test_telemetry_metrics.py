"""Tests for repro.telemetry metrics: counters, gauges, histograms, merge."""

import pickle

import pytest

from repro.telemetry import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = Counter("hits_total")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_negative_increment_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("x").inc(-1)

    def test_merge_adds(self):
        a, b = Counter("x"), Counter("x")
        a.inc(2)
        b.inc(5)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("pool_size")
        g.set(3)
        g.set(7)
        assert g.value == 7.0

    def test_merge_is_last_write(self):
        a, b = Gauge("x"), Gauge("x")
        a.set(1)
        b.set(9)
        a.merge(b)
        assert a.value == 9.0


class TestHistogram:
    def test_le_bucket_semantics(self):
        h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 4.0, 99.0):
            h.observe(v)
        # Inclusive upper edges: 1.0 lands in the le=1.0 bucket, 4.0 in
        # le=4.0, 99.0 in the implicit +Inf overflow.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(106.0)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("x", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("x", bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="non-empty"):
            Histogram("x", bounds=())

    def test_mean(self):
        h = Histogram("x", bounds=(10.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0

    def test_quantile_bucket_resolution(self):
        h = Histogram("x", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0
        assert Histogram("y", bounds=(1.0,)).quantile(0.5) == 0.0

    def test_quantile_overflow_is_inf(self):
        h = Histogram("x", bounds=(1.0,))
        h.observe(5.0)
        assert h.quantile(1.0) == float("inf")

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            Histogram("x", bounds=(1.0,)).quantile(1.5)

    def test_merge_is_elementwise_addition(self):
        a = Histogram("x", bounds=(1.0, 2.0))
        b = Histogram("x", bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.total == pytest.approx(11.0)

    def test_merge_mismatched_bounds_raises(self):
        a = Histogram("x", bounds=(1.0, 2.0))
        b = Histogram("x", bounds=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(b)

    def test_default_buckets_are_fixed_and_sorted(self):
        assert list(DEFAULT_SECONDS_BUCKETS) == sorted(set(DEFAULT_SECONDS_BUCKETS))
        h = Histogram("x")
        assert h.bounds == DEFAULT_SECONDS_BUCKETS


class TestMetricsRegistry:
    def test_same_name_same_labels_is_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a", k="v") is reg.counter("a", k="v")

    def test_labels_create_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("oracle_total", kind="milp").inc()
        reg.counter("oracle_total", kind="dp").inc(2)
        assert reg.counter("oracle_total", kind="milp").value == 1
        assert reg.counter("oracle_total", kind="dp").value == 2
        assert len(reg) == 2

    def test_label_order_is_normalised(self):
        reg = MetricsRegistry()
        reg.counter("x", a="1", b="2").inc()
        assert reg.counter("x", b="2", a="1").value == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered as counter"):
            reg.gauge("x")

    def test_histogram_rebounds_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="already registered with bounds"):
            reg.histogram("lat", buckets=(1.0, 3.0))
        # Omitting buckets accepts the registered series.
        assert reg.histogram("lat").bounds == (1.0, 2.0)

    def test_merge_creates_missing_and_adds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.gauge("g").set(5)
        b.histogram("h", buckets=(1.0,)).observe(0.5)
        a.merge(b)
        assert a.counter("c").value == 3
        assert a.gauge("g").value == 5.0
        assert a.histogram("h").counts == [1, 0]

    def test_merge_type_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(TypeError, match="cannot merge"):
            a.merge(b)

    def test_merge_order_determinism(self):
        # Two different merge groupings of the same worker registries
        # must produce bit-identical snapshots: merging is pure count
        # addition on fixed buckets.
        def worker(values):
            reg = MetricsRegistry()
            for v in values:
                reg.histogram("h", buckets=(1.0, 2.0, 4.0)).observe(v)
                reg.counter("n_total").inc()
            return reg

        workers = [worker([0.5, 1.5]), worker([3.0]), worker([9.0, 0.1])]
        serial = MetricsRegistry()
        for w in workers:
            serial.merge(w)
        paired = MetricsRegistry()
        left = worker([0.5, 1.5])
        left.merge(worker([3.0]))
        paired.merge(left)
        paired.merge(worker([9.0, 0.1]))
        assert serial.snapshot() == paired.snapshot()

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", kind="milp").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snaps = {s["name"]: s for s in reg.snapshot()}
        assert snaps["c"] == {"type": "counter", "name": "c",
                              "labels": {"kind": "milp"}, "value": 2}
        assert snaps["h"]["counts"] == [1, 0]
        assert snaps["h"]["bounds"] == [1.0]
        assert snaps["h"]["sum"] == 0.5
        assert snaps["h"]["count"] == 1

    def test_registry_is_picklable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h", buckets=(1.0,)).observe(2.0)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.snapshot() == reg.snapshot()
