"""Unit + property tests for the dual reformulation (repro.core.dual).

Checks the algebraic identities connecting H, G, beta* and strong duality
against the primal worst-case solvers.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dual import beta_star, g_value, h_beta_value, h_value
from repro.core.worst_case import worst_case_response


@st.composite
def random_instance(draw):
    n = draw(st.integers(1, 6))
    ud = np.array([draw(st.floats(-8, 8, allow_nan=False)) for _ in range(n)])
    lo = np.array([draw(st.floats(0.05, 4.0)) for _ in range(n)])
    width = np.array([draw(st.floats(0.0, 4.0)) for _ in range(n)])
    return ud, lo, lo + width


class TestBetaStar:
    def test_formula(self):
        ud = np.array([1.0, -2.0, 3.0])
        np.testing.assert_allclose(beta_star(ud, 0.0), [0.0, 2.0, 0.0])

    def test_zero_when_c_below_everything(self):
        ud = np.array([1.0, 2.0])
        np.testing.assert_allclose(beta_star(ud, -10.0), [0.0, 0.0])

    def test_nonnegative(self, rng):
        ud = rng.normal(size=5)
        assert np.all(beta_star(ud, rng.normal()) >= 0.0)


class TestHAndGIdentities:
    @given(random_instance(), st.floats(-8, 8, allow_nan=False))
    def test_g_is_numerator_of_h_minus_c(self, instance, c):
        """G(x, beta; c) = (H(x, beta) - c) * sum(L) for any beta >= 0."""
        ud, lo, hi = instance
        beta = beta_star(ud, c)
        g = g_value(lo, hi, ud, beta, c)
        h = h_value(lo, hi, ud, beta)
        assert g == pytest.approx((h - c) * lo.sum(), abs=1e-8, rel=1e-8)

    @given(random_instance())
    def test_strong_duality(self, instance):
        """H_beta(x) (the dual optimum at fixed x) equals the primal
        worst-case value."""
        ud, lo, hi = instance
        primal = worst_case_response(ud, lo, hi).value
        dual = h_beta_value(lo, hi, ud)
        assert dual == pytest.approx(primal, abs=1e-7)

    @given(random_instance())
    def test_g_sign_test_matches_feasibility(self, instance):
        """Proposition 2 in scalar form: G(x, beta*(c), c) >= 0 exactly when
        the worst-case value is >= c."""
        ud, lo, hi = instance
        w = worst_case_response(ud, lo, hi).value
        for c in (w - 1.0, w - 1e-6, w + 1e-6, w + 1.0):
            g = g_value(lo, hi, ud, beta_star(ud, c), c)
            if c <= w - 1e-9:
                assert g >= -1e-7
            elif c >= w + 1e-9:
                assert g <= 1e-7

    def test_h_at_beta_star_of_worst_value_is_fixed_point(self, rng):
        ud = rng.normal(size=4) * 3
        lo = rng.uniform(0.2, 1.0, size=4)
        hi = lo + rng.uniform(0.1, 1.0, size=4)
        w = worst_case_response(ud, lo, hi).value
        h = h_value(lo, hi, ud, beta_star(ud, w))
        assert h == pytest.approx(w, abs=1e-8)

    def test_h_decreases_in_beta(self, rng):
        """H is monotonically decreasing in each beta_i (U >= L)."""
        ud = rng.normal(size=3)
        lo = rng.uniform(0.2, 1.0, size=3)
        hi = lo + rng.uniform(0.1, 1.0, size=3)
        beta = np.zeros(3)
        h0 = h_value(lo, hi, ud, beta)
        beta[1] = 1.0
        h1 = h_value(lo, hi, ud, beta)
        assert h1 <= h0 + 1e-12

    def test_h_requires_positive_denominator(self):
        with pytest.raises(ValueError, match="positive"):
            h_value([0.0, 0.0], [1.0, 1.0], [1.0, 1.0], [0.0, 0.0])

    def test_degenerate_interval_h_is_expected_utility(self):
        """With L = U and beta = 0, H is exactly the QR expected utility."""
        ud = np.array([2.0, -1.0])
        f = np.array([1.0, 3.0])
        h = h_value(f, f, ud, np.zeros(2))
        assert h == pytest.approx(float(f @ ud / f.sum()))
