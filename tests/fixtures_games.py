"""Canonical game constructors shared by tests, benchmarks, and fixtures.

One importable home for the instance definitions that used to be
duplicated between ``tests/conftest.py`` and the benchmark modules, so
golden fixtures, property tests, and benchmarks all agree on what
"the Table I game", "the small 4-target interval game", etc. mean.

These are plain functions (not pytest fixtures) so non-pytest callers —
``benchmarks/``, notebooks, the verify battery's tests — can use them
directly; ``tests/conftest.py`` wraps them as fixtures.
"""

from __future__ import annotations

import numpy as np

from repro.behavior.interval import IntervalSUQR
from repro.experiments.table1 import TABLE1_WEIGHT_BOXES
from repro.game.generator import random_interval_game, table1_game
from repro.game.payoffs import IntervalPayoffs, PayoffMatrix
from repro.game.ssg import IntervalSecurityGame, SecurityGame

__all__ = [
    "canonical_table1",
    "table1_suqr",
    "simple_point_payoffs",
    "simple_point_game",
    "small_interval_game",
    "small_suqr",
    "random_small_game",
]


def canonical_table1() -> IntervalSecurityGame:
    """The paper's Table I worked example (2 targets, 1 resource)."""
    return table1_game()


def table1_suqr(game: IntervalSecurityGame | None = None) -> IntervalSUQR:
    """The Section III weight boxes on the Table I game."""
    game = game if game is not None else canonical_table1()
    return IntervalSUQR(game.payoffs, **TABLE1_WEIGHT_BOXES)


def simple_point_payoffs() -> PayoffMatrix:
    """A small 3-target point game with distinct stakes."""
    return PayoffMatrix(
        defender_reward=np.array([4.0, 6.0, 2.0]),
        defender_penalty=np.array([-5.0, -8.0, -1.0]),
        attacker_reward=np.array([5.0, 8.0, 1.5]),
        attacker_penalty=np.array([-4.0, -7.0, -1.0]),
    )


def simple_point_game() -> SecurityGame:
    return SecurityGame(simple_point_payoffs(), num_resources=1)


def small_interval_game() -> IntervalSecurityGame:
    """A fixed 4-target interval game used across solver tests."""
    payoffs = IntervalPayoffs.zero_sum_midpoint(
        attacker_reward_lo=np.array([2.0, 4.0, 6.0, 1.0]),
        attacker_reward_hi=np.array([4.0, 6.0, 8.0, 3.0]),
        attacker_penalty_lo=np.array([-6.0, -8.0, -4.0, -2.0]),
        attacker_penalty_hi=np.array([-4.0, -6.0, -2.0, -1.0]),
    )
    return IntervalSecurityGame(payoffs, num_resources=1.5)


def small_suqr(game: IntervalSecurityGame | None = None) -> IntervalSUQR:
    """Tight-convention weight boxes matched to :func:`small_interval_game`."""
    game = game if game is not None else small_interval_game()
    return IntervalSUQR(
        game.payoffs,
        w1=(-4.0, -1.0),
        w2=(0.6, 0.9),
        w3=(0.3, 0.6),
        convention="tight",
    )


def random_small_game(seed: int = 77) -> IntervalSecurityGame:
    """The seeded 6-target random instance the solver tests share."""
    return random_interval_game(6, payoff_halfwidth=0.75, seed=seed)
