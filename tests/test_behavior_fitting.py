"""Unit tests for repro.behavior.fitting (MLE + bootstrap intervals)."""

import numpy as np
import pytest

from repro.behavior.fitting import (
    AttackLog,
    bootstrap_weight_boxes,
    fit_suqr,
    simulate_attacks,
)
from repro.behavior.suqr import SUQR, SUQRWeights
from repro.game.generator import random_game


@pytest.fixture(scope="module")
def fitting_setup():
    game = random_game(5, num_resources=2, seed=11)
    truth = SUQR(game.payoffs, SUQRWeights(-3.0, 0.8, 0.5))
    strategies = game.strategy_space.random_batch(40, seed=4)
    log = simulate_attacks(truth, strategies, attacks_per_strategy=25, seed=5)
    return game, truth, log


class TestAttackLog:
    def test_construction(self):
        log = AttackLog(np.array([[0.5, 0.5]]), np.array([1]))
        assert log.num_observations == 1 and log.num_targets == 2

    def test_target_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            AttackLog(np.array([[0.5, 0.5]]), np.array([2]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            AttackLog(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="matching"):
            AttackLog(np.zeros((2, 3)), np.array([0]))

    def test_resample_preserves_shape(self, fitting_setup):
        _, _, log = fitting_setup
        boot = log.resample(seed=0)
        assert boot.num_observations == log.num_observations
        assert boot.num_targets == log.num_targets

    def test_resample_deterministic(self, fitting_setup):
        _, _, log = fitting_setup
        a = log.resample(seed=3)
        b = log.resample(seed=3)
        np.testing.assert_array_equal(a.targets, b.targets)


class TestSimulateAttacks:
    def test_shapes(self, fitting_setup):
        game, truth, _ = fitting_setup
        strategies = game.strategy_space.random_batch(3, seed=0)
        log = simulate_attacks(truth, strategies, attacks_per_strategy=4, seed=0)
        assert log.num_observations == 12
        assert log.num_targets == 5

    def test_hits_follow_model(self, fitting_setup):
        """With many samples, empirical frequencies approach q(x)."""
        game, truth, _ = fitting_setup
        x = game.strategy_space.uniform()
        log = simulate_attacks(truth, x[None, :], attacks_per_strategy=6000, seed=1)
        counts = np.bincount(log.targets, minlength=5) / log.num_observations
        np.testing.assert_allclose(counts, truth.choice_probabilities(x), atol=0.03)

    def test_validation(self, fitting_setup):
        _, truth, _ = fitting_setup
        with pytest.raises(ValueError, match="2-D"):
            simulate_attacks(truth, np.zeros(5))
        with pytest.raises(ValueError, match="attacks_per_strategy"):
            simulate_attacks(truth, np.zeros((1, 5)), attacks_per_strategy=0)


class TestFitSUQR:
    def test_recovers_truth_with_data(self, fitting_setup):
        game, truth, log = fitting_setup
        fitted = fit_suqr(game.payoffs, log)
        np.testing.assert_allclose(
            fitted.as_array(), truth.weights.as_array(), atol=0.5
        )

    def test_fitted_likelihood_beats_wrong_weights(self, fitting_setup):
        game, _, log = fitting_setup
        fitted = fit_suqr(game.payoffs, log)
        good = SUQR(game.payoffs, fitted).log_likelihood(log.coverages, log.targets)
        bad = SUQR(game.payoffs, SUQRWeights(-0.1, 0.05, 0.05)).log_likelihood(
            log.coverages, log.targets
        )
        assert good > bad

    def test_target_count_mismatch(self, fitting_setup):
        _, _, log = fitting_setup
        other = random_game(7, seed=0)
        with pytest.raises(ValueError, match="targets"):
            fit_suqr(other.payoffs, log)

    def test_w1_clipped_nonpositive(self, fitting_setup):
        game, _, log = fitting_setup
        fitted = fit_suqr(game.payoffs, log)
        assert fitted.w1 <= 0.0


class TestBootstrapWeightBoxes:
    def test_boxes_contain_mle(self, fitting_setup):
        game, _, log = fitting_setup
        mle = fit_suqr(game.payoffs, log)
        b1, b2, b3 = bootstrap_weight_boxes(
            game.payoffs, log, num_bootstrap=12, seed=0
        )
        # Percentile intervals of the bootstrap distribution usually cover
        # the point MLE; allow generous slack for the small replicate count.
        assert b1.lo - 1.0 <= mle.w1 <= b1.hi + 1.0
        assert b2.lo - 0.5 <= mle.w2 <= b2.hi + 0.5
        assert b3.lo - 0.5 <= mle.w3 <= b3.hi + 0.5

    def test_more_data_narrower_boxes(self, fitting_setup):
        game, truth, _ = fitting_setup
        strategies = game.strategy_space.random_batch(40, seed=8)
        small = simulate_attacks(truth, strategies[:6], attacks_per_strategy=5, seed=9)
        large = simulate_attacks(truth, strategies, attacks_per_strategy=50, seed=9)
        boxes_small = bootstrap_weight_boxes(game.payoffs, small, num_bootstrap=10, seed=1)
        boxes_large = bootstrap_weight_boxes(game.payoffs, large, num_bootstrap=10, seed=1)
        total_small = sum(b.halfwidth for b in boxes_small)
        total_large = sum(b.halfwidth for b in boxes_large)
        assert total_large < total_small

    def test_parameter_validation(self, fitting_setup):
        game, _, log = fitting_setup
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_weight_boxes(game.payoffs, log, confidence=1.5)
        with pytest.raises(ValueError, match="num_bootstrap"):
            bootstrap_weight_boxes(game.payoffs, log, num_bootstrap=1)

    def test_w1_box_nonpositive(self, fitting_setup):
        game, _, log = fitting_setup
        b1, _, _ = bootstrap_weight_boxes(game.payoffs, log, num_bootstrap=8, seed=2)
        assert b1.hi <= 0.0


class TestEstimateIntervals:
    def test_validation(self, fitting_setup):
        from repro.behavior.fitting import estimate_intervals

        _, _, log = fitting_setup
        with pytest.raises(ValueError, match="delta"):
            estimate_intervals(log, delta=0.0)
        with pytest.raises(ValueError, match="slope"):
            estimate_intervals(log, slope=0.5)
        with pytest.raises(ValueError, match="floor"):
            estimate_intervals(log, floor=0.0)

    def test_hoeffding_radius_formula(self, fitting_setup):
        from repro.behavior.fitting import estimate_intervals

        _, _, log = fitting_setup
        est = estimate_intervals(log, delta=0.05)
        t, n = log.num_targets, log.num_observations
        assert est.radius == pytest.approx(
            np.sqrt(np.log(2 * t / 0.05) / (2 * n))
        )
        assert est.num_observations == n

    def test_radius_halves_as_data_quadruples(self, fitting_setup):
        """The PAC band shrinks like 1/sqrt(N) — the quantitative driver
        of the online intervals-shrink loop."""
        from repro.behavior.fitting import AttackLog, estimate_intervals

        _, _, log = fitting_setup
        n = log.num_observations // 4
        small = AttackLog(log.coverages[:n], log.targets[:n])
        big = AttackLog(log.coverages[: 4 * n], log.targets[: 4 * n])
        r_small = estimate_intervals(small).radius
        r_big = estimate_intervals(big).radius
        assert r_small == pytest.approx(2.0 * r_big)

    def test_band_anchored_at_mean_coverage(self, fitting_setup):
        from repro.behavior.fitting import estimate_intervals

        _, _, log = fitting_setup
        est = estimate_intervals(log, delta=0.1)
        lo_const = np.maximum(est.probabilities - est.radius, 1e-4)
        np.testing.assert_allclose(est.model.lower(est.centres), lo_const)
        np.testing.assert_allclose(
            est.model.upper(est.centres), est.probabilities + est.radius
        )

    def test_model_is_valid_uncertainty(self, fitting_setup):
        """Positive, ordered, non-increasing bounds — what CUBIS needs."""
        from repro.behavior.fitting import estimate_intervals

        _, _, log = fitting_setup
        est = estimate_intervals(log, slope=-2.0)
        pts = np.linspace(0.0, 1.0, 9)
        lo = est.model.lower_on_grid(pts)
        hi = est.model.upper_on_grid(pts)
        assert np.all(lo > 0)
        assert np.all(lo <= hi)
        assert np.all(np.diff(lo, axis=1) <= 0)
        assert np.all(np.diff(hi, axis=1) <= 0)

    def test_never_attacked_target_stays_positive(self):
        from repro.behavior.fitting import estimate_intervals

        # Every observation hits target 0; targets 1 and 2 are unseen.
        log = AttackLog(np.full((30, 3), 0.2), np.zeros(30, dtype=int))
        est = estimate_intervals(log)
        assert np.all(est.probabilities > 0)
        assert np.all(est.model.lower(np.zeros(3)) > 0)
