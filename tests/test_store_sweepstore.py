"""Tests for repro.store.store — the append-only sweep store.

Covers the durability contract (atomic put, torn-file discard), the
sweep-identity binding, cell ordering, shard-spec parsing, and shard
manifests.
"""

import json

import pytest

from repro.store import (
    CellKey,
    CellRecord,
    SweepStore,
    SweepStoreError,
    parse_shard,
)


def _record(cell=0, trial=0, value=1.0, config_hash=None):
    return CellRecord(
        key=CellKey(config_hash or ("a" * 64), cell, trial),
        params={"size": 4},
        status="ok",
        records=[{"value": value}],
    )


class TestParseShard:
    def test_none_is_whole_grid(self):
        assert parse_shard(None) == (0, 1)

    def test_string_form(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)

    def test_pair_form(self):
        assert parse_shard((1, 2)) == (1, 2)
        assert parse_shard([1, 2]) == (1, 2)

    def test_bad_string(self):
        with pytest.raises(ValueError, match="i/n"):
            parse_shard("0:4")
        with pytest.raises(ValueError, match="i/n"):
            parse_shard("half")

    def test_index_out_of_range(self):
        with pytest.raises(ValueError, match="in \\[0, 2\\)"):
            parse_shard("2/2")
        with pytest.raises(ValueError, match="in \\[0"):
            parse_shard((-1, 2))

    def test_num_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="num_shards"):
            parse_shard("0/0")

    def test_garbage_pair(self):
        with pytest.raises(ValueError, match="pair"):
            parse_shard(3)


class TestLayout:
    def test_directories_created(self, tmp_path):
        store = SweepStore(tmp_path / "fresh")
        assert store.cells_dir.is_dir()
        assert store.shards_dir.is_dir()

    def test_reopening_is_idempotent(self, tmp_path):
        SweepStore(tmp_path)
        SweepStore(tmp_path)


class TestBinding:
    def test_first_writer_pins_identity(self, tmp_path):
        store = SweepStore(tmp_path)
        assert store.sweep_hash() is None
        store.bind("f" * 64)
        assert store.sweep_hash() == "f" * 64

    def test_rebinding_same_hash_is_fine(self, tmp_path):
        store = SweepStore(tmp_path)
        store.bind("f" * 64)
        store.bind("f" * 64)

    def test_mismatched_sweep_refused(self, tmp_path):
        store = SweepStore(tmp_path)
        store.bind("f" * 64)
        with pytest.raises(SweepStoreError, match="belongs to sweep"):
            store.bind("0" * 64)

    def test_binding_survives_reopen(self, tmp_path):
        SweepStore(tmp_path).bind("f" * 64)
        assert SweepStore(tmp_path).sweep_hash() == "f" * 64

    def test_corrupt_metadata_raises(self, tmp_path):
        store = SweepStore(tmp_path)
        store.meta_path.write_text("{not json")
        with pytest.raises(SweepStoreError, match="unreadable"):
            store.sweep_hash()


class TestPutLoad:
    def test_roundtrip(self, tmp_path):
        store = SweepStore(tmp_path)
        record = _record(cell=2, trial=1, value=0.75)
        path = store.put(record)
        assert path.exists()
        loaded = store.load(record.key)
        assert loaded.records == [{"value": 0.75}]
        assert loaded.key == record.key

    def test_missing_cell_is_none(self, tmp_path):
        assert SweepStore(tmp_path).load(CellKey("a" * 64, 0, 0)) is None

    def test_put_overwrites_atomically(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put(_record(value=1.0))
        store.put(_record(value=2.0))
        assert store.load(_record().key).records == [{"value": 2.0}]
        assert not list(store.cells_dir.glob(".tmp-*"))

    def test_hash_prefix_collision_treated_as_missing(self, tmp_path):
        """Two keys sharing a 12-char file-name prefix but differing in
        the full hash must not satisfy each other's lookups."""
        store = SweepStore(tmp_path)
        prefix = "a" * 12
        store.put(_record(config_hash=prefix + "b" * 52))
        other = CellKey(prefix + "c" * 52, 0, 0)
        assert store.load(other) is None


class TestTornDiscard:
    def test_torn_file_discarded_and_counted(self, tmp_path):
        store = SweepStore(tmp_path)
        record = _record()
        path = store.put_torn(record)
        assert path.exists()
        assert store.load(record.key) is None
        assert store.torn_discarded == 1
        assert not path.exists(), "torn file must be unlinked"

    def test_rerun_after_discard_succeeds(self, tmp_path):
        store = SweepStore(tmp_path)
        record = _record()
        store.put_torn(record)
        store.load(record.key)
        store.put(record)
        assert store.load(record.key).records == record.records

    def test_iter_cells_discards_torn(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put(_record(cell=0))
        store.put_torn(_record(cell=1))
        records = store.iter_cells()
        assert [r.key.cell_index for r in records] == [0]
        assert store.torn_discarded == 1

    def test_garbage_file_discarded(self, tmp_path):
        store = SweepStore(tmp_path)
        (store.cells_dir / "cell-000000-garbage-t0000.json").write_text("junk")
        assert store.iter_cells() == []
        assert store.torn_discarded == 1


class TestIterOrdering:
    def test_sorted_by_cell_then_trial(self, tmp_path):
        store = SweepStore(tmp_path)
        for cell, trial in [(2, 0), (0, 1), (1, 0), (0, 0), (1, 1)]:
            store.put(_record(cell=cell, trial=trial))
        order = [(r.key.cell_index, r.key.trial_index)
                 for r in store.iter_cells()]
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)]


class TestShardManifests:
    MANIFEST = {"shard": 0, "num_shards": 2, "jobs": 4, "rows": 4}

    def test_write_and_load(self, tmp_path):
        store = SweepStore(tmp_path)
        path = store.write_shard_manifest(dict(self.MANIFEST))
        assert path.name == "shard-0000of0002.json"
        loaded = store.load_shard_manifests()
        assert len(loaded) == 1
        assert loaded[0]["jobs"] == 4
        assert "created_unix" in loaded[0]

    def test_requires_shard_fields(self, tmp_path):
        with pytest.raises(KeyError):
            SweepStore(tmp_path).write_shard_manifest({"rows": 4})

    def test_sorted_by_shard(self, tmp_path):
        store = SweepStore(tmp_path)
        store.write_shard_manifest({"shard": 1, "num_shards": 2})
        store.write_shard_manifest({"shard": 0, "num_shards": 2})
        assert [m["shard"] for m in store.load_shard_manifests()] == [0, 1]

    def test_corrupt_manifest_raises(self, tmp_path):
        store = SweepStore(tmp_path)
        (store.shards_dir / "shard-0000of0001.json").write_text("{oops")
        with pytest.raises(SweepStoreError, match="unreadable shard"):
            store.load_shard_manifests()

    def test_rewrite_replaces_in_place(self, tmp_path):
        store = SweepStore(tmp_path)
        store.write_shard_manifest({"shard": 0, "num_shards": 1, "rows": 1})
        store.write_shard_manifest({"shard": 0, "num_shards": 1, "rows": 9})
        manifests = store.load_shard_manifests()
        assert len(manifests) == 1 and manifests[0]["rows"] == 9
