"""Tests for the multiple-LP SSE baseline."""

import numpy as np
import pytest

from repro.baselines.rational import solve_sse
from repro.game.generator import random_game
from repro.game.payoffs import PayoffMatrix
from repro.game.ssg import SecurityGame


class TestSolveSSE:
    def test_attacked_target_is_best_response(self):
        game = random_game(5, seed=0)
        res = solve_sse(game)
        ua = game.attacker_utilities(res.strategy)
        assert ua[res.attacked_target] == pytest.approx(ua.max(), abs=1e-6)

    def test_value_is_defender_utility_at_attack(self):
        game = random_game(5, seed=1)
        res = solve_sse(game)
        ud = game.defender_utilities(res.strategy)
        assert res.value == pytest.approx(ud[res.attacked_target], abs=1e-6)

    def test_strategy_feasible(self):
        game = random_game(7, num_resources=2, seed=2)
        res = solve_sse(game)
        assert game.strategy_space.contains(res.strategy, atol=1e-6)

    def test_symmetric_two_target_split(self):
        payoffs = PayoffMatrix(
            defender_reward=[1.0, 1.0],
            defender_penalty=[-1.0, -1.0],
            attacker_reward=[1.0, 1.0],
            attacker_penalty=[-1.0, -1.0],
        )
        game = SecurityGame(payoffs, num_resources=1)
        res = solve_sse(game)
        np.testing.assert_allclose(res.strategy, [0.5, 0.5], atol=1e-6)

    def test_dominated_target_ignored(self):
        """A worthless target attracts no equilibrium coverage pressure:
        the defender prefers inducing an attack on the target where her
        utility is highest."""
        payoffs = PayoffMatrix(
            defender_reward=[5.0, 0.5],
            defender_penalty=[-1.0, -0.2],
            attacker_reward=[8.0, 1.0],
            attacker_penalty=[-1.0, -0.5],
        )
        game = SecurityGame(payoffs, num_resources=1)
        res = solve_sse(game)
        # Both targets are candidate best responses; the defender's value
        # must be at least what she gets leaving target 0 fully covered.
        assert res.value >= 0.3

    def test_sse_value_beats_maximin_floor(self):
        """SSE exploits attacker rationality, so it never does worse than
        the maximin floor."""
        from repro.baselines.maximin import solve_maximin

        for seed in range(4):
            game = random_game(5, seed=seed, zero_sum=True)
            sse = solve_sse(game)
            floor = solve_maximin(game).floor_value
            assert sse.value >= floor - 1e-6

    def test_single_target_game(self):
        payoffs = PayoffMatrix(
            defender_reward=[1.0],
            defender_penalty=[-1.0],
            attacker_reward=[2.0],
            attacker_penalty=[-2.0],
        )
        game = SecurityGame(payoffs, num_resources=1)
        res = solve_sse(game)
        assert res.attacked_target == 0
        np.testing.assert_allclose(res.strategy, [1.0], atol=1e-8)


class TestZeroSumEquivalences:
    """In zero-sum security games the Stackelberg value coincides with the
    maximin value (no first-mover advantage in value terms) — a classical
    consistency check tying two independent solvers together."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_sse_value_equals_maximin_floor(self, seed):
        from repro.baselines.maximin import solve_maximin

        game = random_game(5, seed=seed, zero_sum=True)
        sse = solve_sse(game)
        floor = solve_maximin(game).floor_value
        assert sse.value == pytest.approx(floor, abs=1e-5)

    def test_match_beta_zero_equals_maximin_zero_sum(self):
        from repro.baselines.match import solve_match
        from repro.baselines.maximin import solve_maximin

        game = random_game(4, seed=9, zero_sum=True)
        match = solve_match(game, beta=0.0)
        floor = solve_maximin(game).floor_value
        # MATCH at beta=0 equalises defender utility over reachable
        # deviations; in the zero-sum case its guarantee matches maximin.
        ud = game.defender_utilities(match.strategy)
        assert ud.min() == pytest.approx(floor, abs=1e-4)
