"""Tests for the CLI experiment runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.segments == 25 and args.epsilon == 1e-4

    def test_quality_custom(self):
        args = build_parser().parse_args(
            ["quality", "--targets", "4", "8", "--trials", "2", "--seed", "9"]
        )
        assert args.targets == [4, 8]
        assert args.trials == 2 and args.seed == 9

    def test_runtime_args(self):
        args = build_parser().parse_args(["runtime", "--starts", "5"])
        assert args.starts == 5

    def test_intervals_scales(self):
        args = build_parser().parse_args(["intervals", "--scales", "0", "1.5"])
        assert args.scales == [0.0, 1.5]

    def test_ablation_args(self):
        args = build_parser().parse_args(["ablation", "--segments", "2", "4"])
        assert args.segments == [2, 4]

    def test_missing_experiment_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestMain:
    def test_table1_runs(self, capsys):
        code = main(["table1", "--segments", "10", "--epsilon", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "robust" in out

    def test_quality_runs_small(self, capsys):
        code = main(
            ["quality", "--targets", "4", "--trials", "1", "--segments", "6",
             "--epsilon", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "F1" in out and "cubis" in out

    def test_intervals_runs_small(self, capsys):
        code = main(["intervals", "--scales", "0", "1", "--targets", "4", "--trials", "1"])
        assert code == 0
        assert "F3" in capsys.readouterr().out


class TestNewSubcommands:
    def test_landscape_parser(self):
        args = build_parser().parse_args(["landscape", "--types", "4"])
        assert args.types == 4

    def test_calibrate_parser(self):
        args = build_parser().parse_args(["calibrate", "--grid-points", "101"])
        assert args.grid_points == 101

    def test_calibrate_runs(self, capsys):
        code = main(["calibrate", "--grid-points", "101"])
        assert code == 0
        out = capsys.readouterr().out
        assert "calibration" in out and "0.46" in out

    def test_report_parser(self):
        args = build_parser().parse_args(["report", "--full", "--output", "r.md"])
        assert args.full and args.output == "r.md"


class TestSolveSubcommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.targets == 8 and not args.table1
        assert args.segments == 10 and args.epsilon == 1e-3
        assert not args.resilience and not args.certify
        assert args.inject_faults == 0.0 and args.retries == 1

    def test_parser_fault_flags(self):
        args = build_parser().parse_args(
            ["solve", "--table1", "--inject-faults", "0.5", "--fault-seed",
             "7", "--retries", "3", "--certify", "--events"]
        )
        assert args.table1 and args.inject_faults == 0.5
        assert args.fault_seed == 7 and args.retries == 3
        assert args.certify and args.events

    def test_plain_solve_runs(self, capsys):
        code = main(["solve", "--targets", "4", "--segments", "6",
                     "--epsilon", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "worst-case value" in out and "converged" in out

    def test_faulty_certified_solve_runs(self, capsys):
        code = main(
            ["solve", "--targets", "4", "--segments", "6", "--epsilon",
             "0.01", "--inject-faults", "0.5", "--certify", "--events"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ladder" in out and "injected faults" in out
        assert "certificate: VALID" in out and "events" in out

    def test_resilience_flag_without_faults(self, capsys):
        code = main(
            ["solve", "--table1", "--segments", "6", "--epsilon", "0.01",
             "--resilience"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded          False" in out and "ladder" in out


class TestBenchSubcommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.targets == 50 and args.segments == 10
        assert args.games == 6 and args.workers == 4
        assert args.warm_start is True
        assert args.out == "BENCH_runtime.json"

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["bench", "--targets", "12", "--games", "2", "--workers", "1",
             "--no-warm-start", "--out", "x.json"]
        )
        assert args.targets == 12 and args.games == 2 and args.workers == 1
        assert args.warm_start is False and args.out == "x.json"

    def test_workers_flag_on_experiments(self):
        for sub in ("quality", "runtime", "intervals", "ablation", "landscape"):
            args = build_parser().parse_args([sub, "--workers", "3"])
            assert args.workers == 3, sub
            assert build_parser().parse_args([sub]).workers is None

    def test_bench_runs_small(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        code = main(
            ["bench", "--targets", "8", "--segments", "6", "--games", "2",
             "--epsilon", "0.05", "--workers", "1", "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["parallel"]["identical_to_serial"]
        for section in ("cold", "warm"):
            assert "wall_clock_seconds" in payload[section]
            assert "oracle_calls" in payload[section]
            assert "cache_hit_rate" in payload[section]
