"""Tests for the CLI experiment runner."""

import json

import pytest

from repro.cli import build_parser, main
from repro.telemetry import read_jsonl


class TestParser:
    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.segments == 25 and args.epsilon == 1e-4

    def test_quality_custom(self):
        args = build_parser().parse_args(
            ["quality", "--targets", "4", "8", "--trials", "2", "--seed", "9"]
        )
        assert args.targets == [4, 8]
        assert args.trials == 2 and args.seed == 9

    def test_runtime_args(self):
        args = build_parser().parse_args(["runtime", "--starts", "5"])
        assert args.starts == 5

    def test_intervals_scales(self):
        args = build_parser().parse_args(["intervals", "--scales", "0", "1.5"])
        assert args.scales == [0.0, 1.5]

    def test_ablation_args(self):
        args = build_parser().parse_args(["ablation", "--segments", "2", "4"])
        assert args.segments == [2, 4]

    def test_missing_experiment_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestMain:
    def test_table1_runs(self, capsys):
        code = main(["table1", "--segments", "10", "--epsilon", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "robust" in out

    def test_quality_runs_small(self, capsys):
        code = main(
            ["quality", "--targets", "4", "--trials", "1", "--segments", "6",
             "--epsilon", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "F1" in out and "cubis" in out

    def test_intervals_runs_small(self, capsys):
        code = main(["intervals", "--scales", "0", "1", "--targets", "4", "--trials", "1"])
        assert code == 0
        assert "F3" in capsys.readouterr().out


class TestNewSubcommands:
    def test_landscape_parser(self):
        args = build_parser().parse_args(["landscape", "--types", "4"])
        assert args.types == 4

    def test_calibrate_parser(self):
        args = build_parser().parse_args(["calibrate", "--grid-points", "101"])
        assert args.grid_points == 101

    def test_calibrate_runs(self, capsys):
        code = main(["calibrate", "--grid-points", "101"])
        assert code == 0
        out = capsys.readouterr().out
        assert "calibration" in out and "0.46" in out

    def test_report_parser(self):
        args = build_parser().parse_args(["report", "--full", "--output", "r.md"])
        assert args.full and args.output == "r.md"


class TestSolveSubcommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.targets == 8 and not args.table1
        assert args.segments == 10 and args.epsilon == 1e-3
        assert not args.resilience and not args.certify
        assert args.inject_faults == 0.0 and args.retries == 1

    def test_parser_fault_flags(self):
        args = build_parser().parse_args(
            ["solve", "--table1", "--inject-faults", "0.5", "--fault-seed",
             "7", "--retries", "3", "--certify", "--events"]
        )
        assert args.table1 and args.inject_faults == 0.5
        assert args.fault_seed == 7 and args.retries == 3
        assert args.certify and args.events

    def test_plain_solve_runs(self, capsys):
        code = main(["solve", "--targets", "4", "--segments", "6",
                     "--epsilon", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "worst-case value" in out and "converged" in out

    def test_faulty_certified_solve_runs(self, capsys):
        code = main(
            ["solve", "--targets", "4", "--segments", "6", "--epsilon",
             "0.01", "--inject-faults", "0.5", "--certify", "--events"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ladder" in out and "injected faults" in out
        assert "certificate: VALID" in out and "events" in out

    def test_resilience_flag_without_faults(self, capsys):
        code = main(
            ["solve", "--table1", "--segments", "6", "--epsilon", "0.01",
             "--resilience"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded          False" in out and "ladder" in out


class TestTelemetryFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.manifest == "RUN_manifest.json"
        assert not args.no_manifest and not args.no_telemetry
        assert args.telemetry is None

    def test_top_level_flags_precede_subcommand(self):
        args = build_parser().parse_args(
            ["--no-manifest", "--no-telemetry", "--manifest", "m.json",
             "solve", "--telemetry", "t.jsonl"]
        )
        assert args.no_manifest and args.no_telemetry
        assert args.manifest == "m.json" and args.telemetry == "t.jsonl"

    def test_solve_writes_telemetry_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["--manifest", str(tmp_path / "m.json"),
             "solve", "--table1", "--segments", "6", "--epsilon", "0.01",
             "--telemetry", str(trace)]
        )
        assert code == 0
        data = read_jsonl(trace)
        assert data["meta"]["format_version"] == 1
        roots = [s for s in data["spans"] if s["parent_id"] is None]
        assert [s["name"] for s in roots] == ["cli.solve"]
        names = {s["name"] for s in data["spans"]}
        assert {"cubis.solve", "binary_search.step"} <= names
        assert any(m["name"] == "repro_oracle_seconds"
                   for m in data["metrics"])

    def test_manifest_written(self, capsys, tmp_path):
        path = tmp_path / "RUN_manifest.json"
        code = main(
            ["--manifest", str(path),
             "solve", "--table1", "--segments", "6", "--epsilon", "0.01"]
        )
        assert code == 0
        manifest = json.loads(path.read_text())
        assert manifest["command"] == "solve"
        assert manifest["status"] == "ok"
        assert manifest["seed"] == 2016
        assert manifest["telemetry_enabled"] is True
        assert manifest["spans"]["total_spans"] > 0
        assert len(manifest["spans"]["slowest"]) <= 10
        assert manifest["config"]["segments"] == 6

    def test_no_manifest_suppresses(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["--no-manifest", "solve", "--table1", "--segments", "6",
                     "--epsilon", "0.01"])
        assert code == 0
        assert not (tmp_path / "RUN_manifest.json").exists()

    def test_no_telemetry_skips_spans_keeps_manifest(self, capsys, tmp_path):
        path = tmp_path / "m.json"
        code = main(
            ["--no-telemetry", "--manifest", str(path),
             "solve", "--table1", "--segments", "6", "--epsilon", "0.01"]
        )
        assert code == 0
        manifest = json.loads(path.read_text())
        assert manifest["telemetry_enabled"] is False
        assert manifest["spans"]["total_spans"] == 0
        # Metrics survive without tracing (counters are always live).
        assert any(m["name"] == "repro_oracle_seconds"
                   for m in manifest["metrics"])

    def test_no_telemetry_skips_jsonl(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        code = main(
            ["--no-telemetry", "--manifest", str(tmp_path / "m.json"),
             "solve", "--table1", "--segments", "6", "--epsilon", "0.01",
             "--telemetry", str(trace)]
        )
        assert code == 0
        assert not trace.exists()

    def test_manifest_written_on_failure(self, capsys, tmp_path):
        # A command that runs and fails must still leave a manifest
        # behind (status "error") for triage.
        path = tmp_path / "m.json"
        with pytest.raises(ValueError, match="num_segments"):
            main(["--manifest", str(path),
                  "solve", "--table1", "--segments", "0"])
        manifest = json.loads(path.read_text())
        assert manifest["status"] == "error"
        assert manifest["command"] == "solve"


class TestBenchSubcommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.targets == 50 and args.segments == 10
        assert args.games == 6 and args.workers == 4
        assert args.warm_start is True
        assert args.out == "BENCH_runtime.json"

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["bench", "--targets", "12", "--games", "2", "--workers", "1",
             "--no-warm-start", "--out", "x.json"]
        )
        assert args.targets == 12 and args.games == 2 and args.workers == 1
        assert args.warm_start is False and args.out == "x.json"

    def test_workers_flag_on_experiments(self):
        for sub in ("quality", "runtime", "intervals", "ablation", "landscape"):
            args = build_parser().parse_args([sub, "--workers", "3"])
            assert args.workers == 3, sub
            assert build_parser().parse_args([sub]).workers is None

    def test_bench_runs_small(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        code = main(
            ["bench", "--targets", "8", "--segments", "6", "--games", "2",
             "--epsilon", "0.05", "--workers", "1", "--out", str(out_path),
             "--history", str(tmp_path / "hist.jsonl")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["parallel"]["identical_to_serial"]
        for section in ("cold", "warm"):
            assert "wall_clock_seconds" in payload[section]
            assert "oracle_calls" in payload[section]
            assert "cache_hit_rate" in payload[section]
        # The telemetry rollup rides along in the payload (and the
        # printed summary) unless --no-telemetry was given.
        span_names = {a["name"] for a in payload["spans"]["by_name"]}
        assert {"bench.cold_pass", "bench.warm_pass"} <= span_names
        assert "spans:" in out

    def test_bench_no_telemetry_omits_spans(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        code = main(
            ["--no-telemetry", "--manifest", str(tmp_path / "m.json"),
             "bench", "--targets", "8", "--segments", "6", "--games", "2",
             "--epsilon", "0.05", "--workers", "1", "--out", str(out_path),
             "--history", str(tmp_path / "hist.jsonl")]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["spans"] is None


class TestSweepSubcommand:
    SMOKE = ["sweep", "smoke", "--targets", "3", "3", "--trials", "1"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep", "smoke"])
        assert args.driver == "smoke"
        assert args.trials == 2 and args.seed == 2016
        assert args.store is None and args.resume is False
        assert args.shard is None and args.on_error == "raise"
        assert args.retries == 0 and args.quarantine_after == 3

    def test_parser_rejects_unknown_driver(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "bogus"])

    def test_resume_requires_store(self, capsys):
        with pytest.raises(SystemExit, match="requires --store"):
            main(["--no-manifest", "sweep", "smoke", "--resume"])

    def test_smoke_sweep_writes_canonical_json(self, capsys, tmp_path):
        out = tmp_path / "table.json"
        code = main(["--no-manifest", *self.SMOKE, "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["rows"]) == 2 and payload["failures"] == []
        assert "2 rows" in capsys.readouterr().out

    def test_store_run_matches_plain_run_bytes(self, capsys, tmp_path):
        ref = tmp_path / "ref.json"
        stored = tmp_path / "stored.json"
        assert main(["--no-manifest", *self.SMOKE, "--out", str(ref)]) == 0
        assert main(["--no-manifest", *self.SMOKE, "--out", str(stored),
                     "--store", str(tmp_path / "store")]) == 0
        assert stored.read_bytes() == ref.read_bytes()

    def test_resume_replays_bit_identically(self, capsys, tmp_path):
        ref = tmp_path / "ref.json"
        resumed = tmp_path / "resumed.json"
        store = str(tmp_path / "store")
        assert main(["--no-manifest", *self.SMOKE, "--out", str(ref),
                     "--store", store]) == 0
        assert main(["--no-manifest", *self.SMOKE, "--out", str(resumed),
                     "--store", store, "--resume"]) == 0
        assert resumed.read_bytes() == ref.read_bytes()


class TestMergeShardsSubcommand:
    SMOKE = ["sweep", "smoke", "--targets", "3", "3", "--trials", "1"]

    def test_store_flag_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["merge-shards"])

    def test_sharded_merge_equals_serial_bytes(self, capsys, tmp_path):
        """The acceptance check: a 2-shard split, merged, equals the
        1-shard run byte for byte."""
        ref = tmp_path / "ref.json"
        merged = tmp_path / "merged.json"
        store = str(tmp_path / "store")
        assert main(["--no-manifest", *self.SMOKE, "--out", str(ref)]) == 0
        assert main(["--no-manifest", *self.SMOKE, "--store", store,
                     "--shard", "0/2"]) == 0
        assert main(["--no-manifest", *self.SMOKE, "--store", store,
                     "--shard", "1/2"]) == 0
        assert main(["--no-manifest", "merge-shards", "--store", store,
                     "--out", str(merged)]) == 0
        assert merged.read_bytes() == ref.read_bytes()
        out = capsys.readouterr().out
        assert "shard manifests: 2" in out

    def test_multi_root_merge(self, capsys, tmp_path):
        ref = tmp_path / "ref.json"
        merged = tmp_path / "merged.json"
        assert main(["--no-manifest", *self.SMOKE, "--out", str(ref)]) == 0
        assert main(["--no-manifest", *self.SMOKE,
                     "--store", str(tmp_path / "a"), "--shard", "0/2"]) == 0
        assert main(["--no-manifest", *self.SMOKE,
                     "--store", str(tmp_path / "b"), "--shard", "1/2"]) == 0
        assert main(["--no-manifest", "merge-shards",
                     "--store", str(tmp_path / "a"), str(tmp_path / "b"),
                     "--out", str(merged)]) == 0
        assert merged.read_bytes() == ref.read_bytes()

    def test_mixed_sweeps_refused(self, capsys, tmp_path):
        assert main(["--no-manifest", *self.SMOKE,
                     "--store", str(tmp_path / "a")]) == 0
        assert main(["--no-manifest", "sweep", "smoke", "--targets", "3",
                     "--trials", "1", "--seed", "99",
                     "--store", str(tmp_path / "b")]) == 0
        with pytest.raises(SystemExit, match="different sweeps"):
            main(["--no-manifest", "merge-shards",
                  "--store", str(tmp_path / "a"), str(tmp_path / "b")])


class TestTraceSubcommand:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "solve.jsonl"
        code = main(["--no-manifest", "solve", "--targets", "5",
                     "--segments", "6", "--epsilon", "0.05",
                     "--telemetry", str(path)])
        assert code == 0
        return str(path)

    def test_parser_accepts_actions(self):
        for action in ("report", "critical-path", "flamegraph", "diff"):
            args = build_parser().parse_args(["trace", action, "t.jsonl"])
            assert args.action == action
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "bogus", "t.jsonl"])

    def test_report(self, capsys, trace_path):
        assert main(["--no-manifest", "trace", "report", trace_path]) == 0
        out = capsys.readouterr().out
        assert "cli.solve" in out
        assert "wall self" in out

    def test_critical_path_accounts_for_root(self, capsys, trace_path):
        assert main(
            ["--no-manifest", "trace", "critical-path", trace_path]) == 0
        out = capsys.readouterr().out
        assert "cli.solve" in out
        assert "= path total" in out

    def test_flamegraph_to_file(self, capsys, tmp_path, trace_path):
        out_file = tmp_path / "flame.txt"
        assert main(["--no-manifest", "trace", "flamegraph", trace_path,
                     "--out", str(out_file)]) == 0
        lines = out_file.read_text().splitlines()
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert int(value) > 0
            assert stack.split(";")[0] == "cli.solve"

    def test_diff_requires_two_paths(self, trace_path):
        with pytest.raises(SystemExit, match="exactly two"):
            main(["--no-manifest", "trace", "diff", trace_path])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["--no-manifest", "trace", "report", trace_path, trace_path])

    def test_diff_two_runs(self, capsys, tmp_path, trace_path):
        other = tmp_path / "other.jsonl"
        assert main(["--no-manifest", "solve", "--targets", "5",
                     "--segments", "6", "--epsilon", "0.05", "--seed", "5",
                     "--telemetry", str(other)]) == 0
        assert main(["--no-manifest", "trace", "diff", trace_path,
                     str(other)]) == 0
        out = capsys.readouterr().out
        assert "diff:" in out and "delta" in out


class TestServeFlag:
    def test_parser_semantics(self):
        for cmd in (["sweep", "smoke"], ["bench"], ["solve"], ["verify"]):
            assert build_parser().parse_args(cmd).serve is None, cmd
            assert build_parser().parse_args(cmd + ["--serve"]).serve == 0
            assert build_parser().parse_args(
                cmd + ["--serve", "8123"]).serve == 8123

    def test_solve_with_serve_announces_url(self, capsys):
        code = main(["--no-manifest", "solve", "--targets", "4",
                     "--segments", "6", "--epsilon", "0.1", "--serve"])
        assert code == 0
        err = capsys.readouterr().err
        assert "obs server listening on http://127.0.0.1:" in err


class TestBenchHistory:
    BENCH = ["--no-manifest", "bench", "--targets", "8", "--segments", "6",
             "--games", "2", "--epsilon", "0.05", "--workers", "1"]

    def test_history_appended(self, capsys, tmp_path):
        out_path, history = tmp_path / "bench.json", tmp_path / "hist.jsonl"
        for _ in range(2):
            assert main([*self.BENCH, "--out", str(out_path),
                         "--history", str(history)]) == 0
        assert "history appended to" in capsys.readouterr().out
        lines = history.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert record["git_sha"]
            assert record["created"]
            assert record["speedup"] > 0
            assert record["counts"]["cold"]["oracle_calls"] > 0
            top = record["top_spans_by_self_time"]
            assert top and all("wall_self_seconds" in s for s in top)

    def test_history_none_skips(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        assert main([*self.BENCH, "--out", str(out_path),
                     "--history", "none"]) == 0
        assert "history appended" not in capsys.readouterr().out
        assert not (tmp_path / "BENCH_history.jsonl").exists()
