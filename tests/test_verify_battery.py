"""Tests for the verify battery, differential checker, and CLI gate."""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.cli import main
from repro.verify import (
    battery_instances,
    check_interval_monotonicity,
    differential_check,
    run_paths,
    scaled_uncertainty,
    verify_instance,
)
from tests import fixtures_games


@pytest.fixture(scope="module")
def table1_pair():
    game = fixtures_games.canonical_table1()
    return game, fixtures_games.table1_suqr(game)


class TestRunPaths:
    def test_all_paths_complete_and_agree(self, table1_pair):
        game, uncertainty = table1_pair
        outcomes = run_paths(game, uncertainty, num_segments=8)
        assert [o.name for o in outcomes] == [
            "milp-highs", "milp-bnb", "milp-session", "milp-fleet",
            "milp-resolve", "dp", "exact",
        ]
        for o in outcomes:
            assert o.error is None
            assert np.isfinite(o.value)
            assert o.reported_value == pytest.approx(o.value, abs=1e-6)
            # Certified piecewise level never exceeds the exact value by
            # more than interpolation noise (it is an underestimate).
            assert o.certified_level <= o.value + 1e-6

    def test_unknown_path_rejected(self, table1_pair):
        game, uncertainty = table1_pair
        with pytest.raises(ValueError, match="unknown solver paths"):
            run_paths(game, uncertainty, paths=("cplex",))

    def test_crash_fault_recorded_not_raised(self, table1_pair):
        game, uncertainty = table1_pair
        outcomes = run_paths(
            game,
            uncertainty,
            paths=("milp-highs",),
            inject_faults=0.9,
            fault_seed=1,
            fault_modes=("error",),
        )
        injected = next(o for o in outcomes if o.name == "milp-injected")
        assert injected.error is not None
        assert injected.strategy is None
        assert np.isnan(injected.value)


class TestDifferentialCheck:
    def test_clean_instance_passes(self, table1_pair):
        game, uncertainty = table1_pair
        checks = differential_check(
            game, uncertainty, num_segments=8, seed=123,
            paths=("milp-highs", "dp"),
        )
        assert all(c.passed for c in checks)
        names = [c.name for c in checks]
        assert "differential.path.milp-highs" in names
        assert "differential.milp-highs-vs-dp" in names

    def test_pairwise_context_reports_offending_pair(self, table1_pair):
        game, uncertainty = table1_pair
        checks = differential_check(
            game, uncertainty, num_segments=8, seed=99,
            paths=("milp-highs", "dp"),
        )
        pairwise = next(
            c for c in checks if c.name == "differential.milp-highs-vs-dp"
        )
        assert pairwise.context["seed"] == 99
        assert pairwise.context["pair"] == ["milp-highs", "dp"]
        assert set(pairwise.context["values"]) == {"milp-highs", "dp"}
        assert set(pairwise.context["slacks"]) == {"milp-highs", "dp"}
        assert pairwise.measured is not None and pairwise.bound is not None

    def test_injected_crash_fails_the_battery(self, table1_pair):
        game, uncertainty = table1_pair
        checks = differential_check(
            game, uncertainty, num_segments=8,
            paths=("milp-highs",),
            inject_faults=0.9, fault_seed=1, fault_modes=("error",),
        )
        failing = [c for c in checks if not c.passed]
        assert failing
        assert failing[0].name == "differential.path.milp-injected"
        assert "crashed" in failing[0].detail


class TestTheoremEdges:
    def test_scaled_uncertainty_requires_interval_suqr(self, table1_pair):
        game, _ = table1_pair
        with pytest.raises(TypeError, match="IntervalSUQR"):
            scaled_uncertainty(object(), 0.5)

    def test_monotonicity_needs_two_scales(self, table1_pair):
        game, uncertainty = table1_pair
        with pytest.raises(ValueError, match="two scales"):
            check_interval_monotonicity(game, uncertainty, scales=(1.0,))

    def test_scaled_uncertainty_shrinks_boxes(self, table1_pair):
        _, uncertainty = table1_pair
        narrow = scaled_uncertainty(uncertainty, 0.0)
        for box in narrow.weight_boxes:
            assert box.halfwidth == pytest.approx(0.0)


class TestVerifyInstance:
    def test_table1_fast_report(self, table1_pair):
        instance = battery_instances(seeds=0)[0]
        report = verify_instance(instance, num_segments=8, fast=True)
        assert report.instance == "table1"
        assert report.passed, report.summary()
        names = {c.name for c in report.checks}
        assert "theorem.beta_elimination" in names
        assert "theorem.value_point" in names
        assert "theorem.segment_bound" in names
        # fast mode skips the monotonicity sweep
        assert "theorem.interval_monotonicity" not in names
        assert report.metadata["theorem_slack"] > 0
        assert report.round_trips()

    def test_roster_shape(self):
        roster = battery_instances(seeds=2, num_targets=4)
        assert [i.label for i in roster] == [
            "table1", "random-T4-seed0", "random-T4-seed1",
        ]
        assert roster[1].seed == 0


class TestVerifyCli:
    def run_cli(self, tmp_path, *extra):
        report_path = tmp_path / "verify.jsonl"
        argv = [
            "--no-manifest", "verify",
            "--seeds", "0", "--fast", "--segments", "8", "--no-golden",
            "--report", str(report_path),
            *extra,
        ]
        return main(argv), report_path

    def test_clean_run_exits_zero_and_writes_jsonl(self, tmp_path, capsys):
        code, report_path = self.run_cli(tmp_path)
        assert code == 0
        out = capsys.readouterr().out
        assert "table1: PASS" in out
        data = telemetry.read_jsonl(report_path)
        assert len(data["conformance"]) == 1
        record = data["conformance"][0]
        assert record["instance"] == "table1"
        assert record["passed"] is True
        assert record["checks"]
        # spans from the battery's solves ride along in the same artefact
        # (the cli.verify root span is still open at write time)
        assert any(s["name"] == "binary_search.step" for s in data["spans"])

    def test_injected_fault_exits_nonzero(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc_info:
            self.run_cli(tmp_path, "--inject-faults", "0.5")
        message = str(exc_info.value.code)
        assert "FAIL" in message
        assert "milp-injected" in message

    def test_jsonl_report_round_trips_through_loader(self, tmp_path, capsys):
        from repro.verify import ConformanceReport

        _, report_path = self.run_cli(tmp_path)
        data = telemetry.read_jsonl(report_path)
        report = ConformanceReport.from_dict(data["conformance"][0])
        assert report.passed
        assert report.round_trips()


class TestRegenerateCli:
    def test_regenerate_rewrites_fixture(self, tmp_path, capsys, monkeypatch):
        import repro.verify.golden as golden_mod

        src = {
            "schema_version": 1,
            "name": "mini",
            "description": "regeneration smoke fixture",
            "instance": {"kind": "table1"},
            "uncertainty": {
                "kind": "suqr",
                "w1": [-6.0, -2.0], "w2": [0.5, 1.0], "w3": [0.4, 0.9],
            },
            "solve": {"num_segments": 5, "epsilon": 0.01},
            "expected": {"robust_worst_case": {"value": -0.95, "atol": 0.2}},
            "provenance": {},
        }
        path = tmp_path / "mini.json"
        path.write_text(json.dumps(src))
        monkeypatch.setattr(
            golden_mod, "measure_fixture",
            lambda fixture: {"robust_worst_case": -0.91},
        )
        code = main([
            "--no-manifest", "verify", "--regenerate",
            "--golden-dir", str(tmp_path),
        ])
        assert code == 0
        updated = json.loads(path.read_text())
        assert updated["expected"]["robust_worst_case"]["value"] == -0.91
        assert updated["provenance"]["git_sha"]
