"""End-to-end tests of the fault-tolerant solve pipeline: injected
failures, ladder recovery, certificates, and the converged flag."""

import numpy as np
import pytest

from repro.behavior.interval import IntervalSUQR
from repro.core.cubis import solve_cubis
from repro.resilience import (
    FaultInjector,
    LadderExhaustedError,
    ResiliencePolicy,
    Rung,
    certify_result,
    injected_policy,
    theorem_slack,
)


@pytest.fixture(scope="module")
def instance():
    from repro.game.generator import random_interval_game

    game = random_interval_game(5, num_resources=1.5, seed=21)
    uncertainty = IntervalSUQR(
        game.payoffs, w1=(-4.0, -1.0), w2=(0.6, 0.9), w3=(0.3, 0.6),
        convention="tight",
    )
    return game, uncertainty


@pytest.fixture(scope="module")
def clean_result(instance):
    game, uncertainty = instance
    return solve_cubis(game, uncertainty, num_segments=10, epsilon=1e-3)


class TestFaultyEqualsFaultFree:
    """The acceptance scenario: 50% of MILP solves fail, the ladder
    recovers, and the answer matches the fault-free run within the
    Theorem 1 tolerance ``epsilon + 1/K``."""

    def solve_faulty(self, instance, seed):
        game, uncertainty = instance
        injector = FaultInjector(0.5, seed=seed)
        policy = injected_policy(injector, ResiliencePolicy(max_retries=2))
        result = solve_cubis(
            game, uncertainty, num_segments=10, epsilon=1e-3,
            resilience=policy,
        )
        return injector, result

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_completes_and_matches(self, instance, clean_result, seed):
        game, uncertainty = instance
        injector, result = self.solve_faulty(instance, seed)
        assert injector.faults > 0, "the schedule must actually inject"
        tolerance = result.epsilon + 1.0 / result.num_segments
        assert abs(result.worst_case_value - clean_result.worst_case_value) <= tolerance
        certificate = certify_result(game, uncertainty, result)
        assert certificate.valid, certificate.summary()

    def test_reports_ladder_usage(self, instance):
        injector, result = self.solve_faulty(instance, seed=3)
        report = result.resilience
        assert report is not None
        assert report.failed_attempts > 0
        assert sum(report.rung_counts) == result.iterations
        assert result.degraded == report.degraded
        # Every accepted step must have an "ok" event.
        ok_events = [e for e in report.events if e.outcome == "ok"]
        assert len(ok_events) == result.iterations

    def test_clean_policy_is_not_degraded(self, instance):
        game, uncertainty = instance
        result = solve_cubis(
            game, uncertainty, num_segments=10, epsilon=1e-3,
            resilience=ResiliencePolicy(),
        )
        assert not result.degraded
        assert result.resilience.rung_counts[1:] == (0, 0)
        # Ladder runs answer every step with an exact MILP solve, so the
        # strategy must match the plain exact path (memoise=False); the
        # default memoised path may return a different — equally valid —
        # witness from the LP-relaxation screen.
        exact = solve_cubis(
            game, uncertainty, num_segments=10, epsilon=1e-3, memoise=False,
        )
        np.testing.assert_allclose(result.strategy, exact.strategy, atol=1e-8)


class TestCrossBackendLadderEquality:
    """Single-rung ladders must agree: highs and bnb solve the identical
    MILP; the dp rung is within the Theorem 1 envelope."""

    @pytest.fixture(scope="class")
    def rung_results(self, instance):
        game, uncertainty = instance
        results = {}
        for label, rungs in (
            ("highs", (Rung("milp", "highs"),)),
            ("bnb", (Rung("milp", "bnb"),)),
            ("dp", (Rung("dp"),)),
        ):
            results[label] = solve_cubis(
                game, uncertainty, num_segments=10, epsilon=1e-3,
                resilience=ResiliencePolicy(rungs=rungs),
            )
        return results

    def test_highs_and_bnb_agree_exactly(self, rung_results):
        a, b = rung_results["highs"], rung_results["bnb"]
        assert a.worst_case_value == pytest.approx(b.worst_case_value, abs=1e-6)
        np.testing.assert_allclose(a.strategy, b.strategy, atol=1e-5)

    def test_dp_rung_within_theorem_envelope(self, instance, rung_results):
        game, _ = instance
        a, d = rung_results["highs"], rung_results["dp"]
        slack = theorem_slack(game, a.epsilon, a.num_segments)
        assert abs(a.worst_case_value - d.worst_case_value) <= slack

    def test_each_rung_result_certifies(self, instance, rung_results):
        game, uncertainty = instance
        for result in rung_results.values():
            assert certify_result(game, uncertainty, result).valid


class TestHardFailures:
    def test_exhausted_ladder_raises_with_step_context(self, instance):
        game, uncertainty = instance
        injector = FaultInjector(1.0, modes=("error",), seed=0)
        policy = ResiliencePolicy(
            rungs=(Rung("milp", injector.wrap("highs")),), max_retries=1
        )
        with pytest.raises(LadderExhaustedError) as excinfo:
            solve_cubis(
                game, uncertainty, num_segments=6, epsilon=0.01,
                resilience=policy,
            )
        message = str(excinfo.value)
        assert "step 1" in message
        assert "bracket" in message
        assert "faulty-highs" in message

    def test_plain_backend_failure_names_backend_and_bracket(self, instance):
        game, uncertainty = instance
        injector = FaultInjector(1.0, modes=("error",), seed=0)
        with pytest.raises(RuntimeError) as excinfo:
            solve_cubis(
                game, uncertainty, num_segments=6, epsilon=0.01,
                backend=injector.wrap("highs"),
            )
        message = str(excinfo.value)
        assert "faulty-highs" in message
        assert "step 1" in message and "bracket" in message

    def test_nan_objective_is_caught_not_propagated(self, instance):
        game, uncertainty = instance
        injector = FaultInjector(1.0, modes=("nan",), seed=0)
        policy = ResiliencePolicy(
            rungs=(Rung("milp", injector.wrap("highs")), Rung("dp")),
            max_retries=0,
        )
        result = solve_cubis(
            game, uncertainty, num_segments=10, epsilon=1e-3,
            resilience=policy,
        )
        assert result.degraded
        assert result.resilience.rung_counts == (0, result.iterations)
        assert np.isfinite(result.worst_case_value)

    def test_slow_backend_times_out_onto_dp(self, instance):
        game, uncertainty = instance
        injector = FaultInjector(
            1.0, modes=("slow",), seed=0, slow_seconds=0.05
        )
        policy = ResiliencePolicy(
            rungs=(Rung("milp", injector.wrap("highs")), Rung("dp")),
            max_retries=0, step_timeout=0.01, sticky=True,
        )
        result = solve_cubis(
            game, uncertainty, num_segments=10, epsilon=1e-3,
            resilience=policy,
        )
        assert result.degraded
        outcomes = {e.outcome for e in result.resilience.events}
        assert "timeout" in outcomes
        # Sticky: only the first step pays the slow attempt.
        timeouts = [e for e in result.resilience.events if e.outcome == "timeout"]
        assert len(timeouts) == 1


class TestConvergedFlag:
    def test_exhausted_iterations_flagged_and_warned(self, instance):
        game, uncertainty = instance
        with pytest.warns(RuntimeWarning, match="max_iterations"):
            result = solve_cubis(
                game, uncertainty, num_segments=6, epsilon=1e-9,
                max_iterations=3,
            )
        assert not result.converged
        assert result.upper_bound - result.lower_bound > 1e-9

    def test_unconverged_result_still_certifies(self, instance):
        game, uncertainty = instance
        with pytest.warns(RuntimeWarning):
            result = solve_cubis(
                game, uncertainty, num_segments=6, epsilon=1e-9,
                max_iterations=3,
            )
        certificate = certify_result(game, uncertainty, result)
        assert certificate.valid, certificate.summary()

    def test_normal_solve_converges(self, clean_result):
        assert clean_result.converged
        assert clean_result.resilience is None
        assert not clean_result.degraded


class TestInputValidation:
    def test_num_segments_validated(self, instance):
        game, uncertainty = instance
        with pytest.raises(ValueError, match="num_segments"):
            solve_cubis(game, uncertainty, num_segments=0)
        with pytest.raises(TypeError, match="num_segments"):
            solve_cubis(game, uncertainty, num_segments=2.5)

    def test_max_iterations_validated(self, instance):
        game, uncertainty = instance
        with pytest.raises(ValueError, match="max_iterations"):
            solve_cubis(game, uncertainty, max_iterations=0)

    def test_constraints_with_dp_rung_rejected(self, instance):
        from repro.game.constraints import CoverageConstraints

        game, uncertainty = instance
        constraints = CoverageConstraints(
            matrix=np.eye(game.num_targets), rhs=np.ones(game.num_targets)
        )
        with pytest.raises(ValueError, match="milp_only"):
            solve_cubis(
                game, uncertainty, coverage_constraints=constraints,
                resilience=ResiliencePolicy(),
            )

    def test_constraints_with_milp_only_policy_work(self, instance):
        from repro.game.constraints import CoverageConstraints

        game, uncertainty = instance
        constraints = CoverageConstraints(
            matrix=np.eye(game.num_targets),
            rhs=np.full(game.num_targets, 0.9),
        )
        result = solve_cubis(
            game, uncertainty, num_segments=8, epsilon=0.01,
            coverage_constraints=constraints,
            resilience=ResiliencePolicy().milp_only(),
        )
        assert constraints.satisfied(result.strategy)


class TestPasaqLadder:
    def test_pasaq_recovers_from_faults(self):
        from repro.baselines.pasaq import solve_pasaq
        from repro.behavior.qr import QuantalResponse
        from repro.game.generator import random_game

        game = random_game(5, seed=4)
        model = QuantalResponse(game.payoffs, 0.8)
        clean = solve_pasaq(game, model, num_segments=8, epsilon=0.01)
        injector = FaultInjector(0.5, seed=11)
        policy = injected_policy(injector, ResiliencePolicy(max_retries=4))
        faulty = solve_pasaq(
            game, model, num_segments=8, epsilon=0.01, resilience=policy
        )
        assert injector.faults > 0
        assert faulty.value == pytest.approx(clean.value, abs=1e-9)
        assert faulty.converged
        assert faulty.resilience is not None
        # The dp rung is stripped for PASAQ.
        assert all("milp" in l for l in faulty.resilience.rung_labels)
