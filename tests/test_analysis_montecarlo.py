"""Tests for repro.analysis.montecarlo."""

import numpy as np
import pytest

from repro.analysis.montecarlo import OutcomeDistribution, simulate_outcomes
from repro.core.cubis import solve_cubis


class TestOutcomeDistribution:
    def test_summary_statistics(self):
        d = OutcomeDistribution(np.array([1.0, 2.0, 3.0, 4.0]))
        assert d.mean == pytest.approx(2.5)
        assert d.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert d.quantile(0.5) == pytest.approx(2.5)

    def test_probability_below(self):
        d = OutcomeDistribution(np.array([-3.0, -1.0, 0.0, 2.0]))
        assert d.probability_below(-0.5) == pytest.approx(0.5)
        assert d.probability_below(-10.0) == 0.0

    def test_single_sample_std_zero(self):
        assert OutcomeDistribution(np.array([1.0])).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            OutcomeDistribution(np.array([]))


class TestSimulateOutcomes:
    def test_shapes_and_determinism(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        a = simulate_outcomes(
            small_interval_game, small_uncertainty, x,
            num_seasons=30, attacks_per_season=10, seed=0,
        )
        b = simulate_outcomes(
            small_interval_game, small_uncertainty, x,
            num_seasons=30, attacks_per_season=10, seed=0,
        )
        assert len(a.samples) == 30
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_mean_within_utility_range(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        d = simulate_outcomes(
            small_interval_game, small_uncertainty, x,
            num_seasons=50, attacks_per_season=5, seed=1,
        )
        lo, hi = small_interval_game.utility_range()
        assert lo - 1e-9 <= d.samples.min() and d.samples.max() <= hi + 1e-9

    def test_guarantee_rarely_violated_in_expectation(self, small_interval_game, small_uncertainty):
        """Per-season *mean* utility concentrates above the worst-case
        guarantee as the season grows (single attacks can dip below — the
        guarantee is on expectations)."""
        result = solve_cubis(
            small_interval_game, small_uncertainty, num_segments=12, epsilon=0.01
        )
        d = simulate_outcomes(
            small_interval_game, small_uncertainty, result.strategy,
            num_seasons=100, attacks_per_season=200, seed=2,
        )
        assert d.probability_below(result.worst_case_value - 0.5) <= 0.05

    def test_validation(self, small_interval_game, small_uncertainty):
        x = small_interval_game.strategy_space.uniform()
        with pytest.raises(ValueError, match=">= 1"):
            simulate_outcomes(small_interval_game, small_uncertainty, x, num_seasons=0)

    def test_rejects_models_without_sampler(self, small_interval_game):
        from repro.behavior.interval import FunctionIntervalModel

        consts = np.ones(4)
        model = FunctionIntervalModel(
            4,
            lambda p: np.exp(-2 * p[None, :]) * consts[:, None],
            lambda p: np.exp(-1 * p[None, :]) * (consts[:, None] + 1),
        )
        x = small_interval_game.strategy_space.uniform()
        with pytest.raises(TypeError, match="sample_model"):
            simulate_outcomes(small_interval_game, model, x)
