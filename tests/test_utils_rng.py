"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators, spawn_seed_sequences


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=5)
        b = as_generator(42).integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 10**9)
        b = as_generator(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        g = as_generator(ss)
        assert isinstance(g, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            spawn_generators(0, -1)

    def test_streams_are_independent(self):
        gens = spawn_generators(0, 3)
        draws = [g.integers(0, 10**9, size=4).tolist() for g in gens]
        assert draws[0] != draws[1] != draws[2]

    def test_reproducible_from_root_seed(self):
        a = [g.integers(0, 10**9) for g in spawn_generators(99, 3)]
        b = [g.integers(0, 10**9) for g in spawn_generators(99, 3)]
        assert a == b

    def test_accepts_generator_as_root(self):
        gens = spawn_generators(np.random.default_rng(5), 2)
        assert len(gens) == 2

    def test_accepts_seed_sequence_as_root(self):
        gens = spawn_generators(np.random.SeedSequence(5), 2)
        assert len(gens) == 2


class TestSpawnSeedSequences:
    def test_count_and_type(self):
        children = spawn_seed_sequences(0, 3)
        assert len(children) == 3
        assert all(isinstance(c, np.random.SeedSequence) for c in children)

    def test_zero_count(self):
        assert spawn_seed_sequences(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            spawn_seed_sequences(0, -1)

    def test_stable_prefix(self):
        """The first k children are identical regardless of how many are
        spawned — the property that lets a sweep grow without re-dealing
        existing cells."""
        short = spawn_seed_sequences(42, 2)
        long = spawn_seed_sequences(42, 5)
        for a, b in zip(short, long):
            assert a.generate_state(4).tolist() == b.generate_state(4).tolist()

    def test_children_are_independent(self):
        children = spawn_seed_sequences(42, 3)
        states = [tuple(c.generate_state(4).tolist()) for c in children]
        assert len(set(states)) == 3

    def test_seed_sequence_root_spawns_deterministically(self):
        a = spawn_seed_sequences(np.random.SeedSequence(9), 2)
        b = spawn_seed_sequences(np.random.SeedSequence(9), 2)
        assert a[0].generate_state(2).tolist() == b[0].generate_state(2).tolist()

    def test_generator_root_accepted(self):
        children = spawn_seed_sequences(np.random.default_rng(1), 2)
        assert len(children) == 2
