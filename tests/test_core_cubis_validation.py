"""Deeper CUBIS optimality validation: multi-target brute force and
cross-solver consistency on a battery of random games."""

import itertools

import numpy as np
import pytest

from repro.behavior.interval import IntervalSUQR
from repro.core.cubis import solve_cubis
from repro.core.exact import solve_exact
from repro.core.worst_case import evaluate_worst_case
from repro.game.generator import random_interval_game


def brute_force_3t(game, uncertainty, grid_points=61):
    """Exhaustive 2-D grid search over the 3-target, 1-resource simplex."""
    best_v, best_x = -np.inf, None
    grid = np.linspace(0.0, 1.0, grid_points)
    for a in grid:
        for b in grid:
            c = 1.0 - a - b
            if c < -1e-12 or c > 1.0:
                continue
            x = np.array([a, b, max(c, 0.0)])
            v = evaluate_worst_case(game, uncertainty, x).value
            if v > best_v:
                best_v, best_x = v, x
    return best_x, best_v


@pytest.mark.parametrize("seed", [10, 11, 12, 13])
class TestThreeTargetBruteForce:
    def make(self, seed):
        game = random_interval_game(
            3, num_resources=1, payoff_halfwidth=0.6, seed=seed
        )
        uncertainty = IntervalSUQR(
            game.payoffs, w1=(-4.0, -2.0), w2=(0.6, 0.9), w3=(0.3, 0.6),
            convention="tight",
        )
        return game, uncertainty

    def test_cubis_matches_brute_force(self, seed):
        game, uncertainty = self.make(seed)
        bx, bv = brute_force_3t(game, uncertainty)
        result = solve_cubis(game, uncertainty, num_segments=25, epsilon=1e-3)
        # CUBIS must reach the grid optimum up to its O(eps + 1/K)
        # envelope; it may *exceed* it (the worst-case surface has sharp
        # ridges the 61-point grid under-samples — observed overshoots are
        # ~0.1), so the upper check only guards against gross inflation.
        assert result.worst_case_value >= bv - 0.06
        assert result.worst_case_value <= bv + 0.2

    def test_dp_oracle_matches_brute_force(self, seed):
        game, uncertainty = self.make(seed)
        _, bv = brute_force_3t(game, uncertainty)
        result = solve_cubis(
            game, uncertainty, num_segments=120, epsilon=1e-3, oracle="dp"
        )
        assert result.worst_case_value >= bv - 0.06


class TestCrossSolverConsistency:
    @pytest.mark.parametrize("seed", [20, 21])
    def test_exact_never_beats_cubis_meaningfully(self, seed):
        """The multi-start comparator cannot exceed CUBIS by more than the
        approximation envelope (Theorem 1) — if it did, CUBIS would be
        missing value somewhere."""
        game = random_interval_game(5, payoff_halfwidth=0.5, seed=seed)
        uncertainty = IntervalSUQR(
            game.payoffs, w1=(-4.0, -2.0), w2=(0.6, 0.9), w3=(0.3, 0.6),
            convention="tight",
        )
        cubis = solve_cubis(game, uncertainty, num_segments=20, epsilon=1e-3)
        exact = solve_exact(game, uncertainty, num_starts=15, seed=seed)
        assert exact.worst_case_value <= cubis.worst_case_value + 0.05

    def test_lb_tracks_exact_value(self):
        """The binary-search lb (on the approximated problem) stays within
        the Lemma-2 distance of the exact worst case of the strategy."""
        game = random_interval_game(4, payoff_halfwidth=0.5, seed=30)
        uncertainty = IntervalSUQR(
            game.payoffs, w1=(-4.0, -2.0), w2=(0.6, 0.9), w3=(0.3, 0.6),
            convention="tight",
        )
        for k in (10, 30):
            result = solve_cubis(game, uncertainty, num_segments=k, epsilon=1e-3)
            assert abs(result.worst_case_value - result.lower_bound) < 5.0 / k + 0.05

    def test_equality_vs_inequality_budget_agree(self):
        """With worst-case utility monotone in coverage, the <=R and =R
        formulations reach the same value."""
        game = random_interval_game(4, payoff_halfwidth=0.5, seed=31)
        uncertainty = IntervalSUQR(
            game.payoffs, w1=(-4.0, -2.0), w2=(0.6, 0.9), w3=(0.3, 0.6),
            convention="tight",
        )
        le = solve_cubis(game, uncertainty, num_segments=12, epsilon=0.01)
        eq = solve_cubis(
            game, uncertainty, num_segments=12, epsilon=0.01,
            equality_resources=True,
        )
        assert le.worst_case_value == pytest.approx(eq.worst_case_value, abs=0.03)
