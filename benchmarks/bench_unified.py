"""Ablation A3 — unified robustness: observation and execution noise.

Sweeps the two extra uncertainty channels of the reference-[13] framework
(implemented in ``repro.behavior.noise``) on a fixed game:

* execution noise ``alpha``: how the worst-case guarantee degrades as
  patrols may fall short of the plan, and how much planning *for* the
  shortfall (CUBIS with ``execution_alpha``) recovers versus planning
  blind;
* observation noise ``gamma``: the same comparison for attacker
  misperception of the strategy.

Expected shape: guarantees degrade monotonically with either noise
radius; the noise-aware plan weakly dominates the noise-blind plan at
every positive radius.

Run:  pytest benchmarks/bench_unified.py --benchmark-only
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_series
from repro.behavior.noise import ObservationNoisyModel
from repro.core.cubis import solve_cubis
from repro.core.worst_case import evaluate_worst_case
from repro.experiments.quality import default_uncertainty
from repro.game.generator import random_interval_game


def _instance():
    game = random_interval_game(8, payoff_halfwidth=0.5, seed=17)
    return game, default_uncertainty(game.payoffs)


def test_a3_execution_noise(benchmark, report):
    game, uncertainty = _instance()
    blind = solve_cubis(game, uncertainty, num_segments=12, epsilon=0.01)
    benchmark(
        solve_cubis, game, uncertainty, num_segments=12, epsilon=0.01,
        execution_alpha=0.1,
    )

    alphas = [0.0, 0.05, 0.1, 0.2]
    aware_vals = []
    blind_vals = []
    for alpha in alphas:
        aware = solve_cubis(
            game, uncertainty, num_segments=12, epsilon=0.01,
            execution_alpha=alpha,
        )
        aware_vals.append(aware.worst_case_value)
        blind_vals.append(
            evaluate_worst_case(
                game, uncertainty, blind.strategy, execution_alpha=alpha
            ).value
        )
    report(
        "a3_execution",
        format_series(
            "alpha",
            alphas,
            {"noise-aware plan": aware_vals, "noise-blind plan": blind_vals},
            title="A3a: worst-case utility vs execution-noise radius",
        ),
    )
    # Monotone degradation; awareness never hurts.
    assert all(b >= a - 0.05 for a, b in zip(aware_vals[1:], aware_vals))
    for aware, blind_v in zip(aware_vals, blind_vals):
        assert aware >= blind_v - 0.05


def test_a3_observation_noise(benchmark, report):
    game, uncertainty = _instance()
    blind = solve_cubis(game, uncertainty, num_segments=12, epsilon=0.01)
    benchmark(
        solve_cubis, game, ObservationNoisyModel(uncertainty, 0.1),
        num_segments=12, epsilon=0.01,
    )

    gammas = [0.0, 0.05, 0.1, 0.2]
    aware_vals = []
    blind_vals = []
    for gamma in gammas:
        noisy = ObservationNoisyModel(uncertainty, gamma)
        aware = solve_cubis(game, noisy, num_segments=12, epsilon=0.01)
        aware_vals.append(aware.worst_case_value)
        blind_vals.append(evaluate_worst_case(game, noisy, blind.strategy).value)
    report(
        "a3_observation",
        format_series(
            "gamma",
            gammas,
            {"noise-aware plan": aware_vals, "noise-blind plan": blind_vals},
            title="A3b: worst-case utility vs observation-noise radius",
        ),
    )
    # On games whose behavioral intervals are already wide, observation
    # noise moves the worst case by less than the O(1/K) approximation
    # envelope — assert only up to that slack.
    assert all(b >= a - 0.05 for a, b in zip(aware_vals[1:], aware_vals))
    for aware, blind_v in zip(aware_vals, blind_vals):
        assert aware >= blind_v - 0.05
