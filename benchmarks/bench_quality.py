"""Benchmark + reproduction of Experiment F1 (solution quality vs size).

Regenerates the worst-case-utility-vs-#targets series for CUBIS and the
four baselines, and times a representative CUBIS solve at T = 10.

Expected shape (DESIGN.md §2): CUBIS >= every baseline's worst case, with
midpoint and uniform far below; the margin persists as T grows.

Run:  pytest benchmarks/bench_quality.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.cubis import solve_cubis
from repro.experiments.quality import default_uncertainty, format_quality, run_quality
from repro.game.generator import random_interval_game


@pytest.fixture(scope="module")
def quality_table():
    return run_quality(
        target_counts=(5, 10, 20),
        num_trials=3,
        num_segments=10,
        epsilon=0.01,
        num_types=6,
        seed=2016,
    )


def test_f1_cubis_solve_t10(benchmark):
    game = random_interval_game(10, seed=0)
    uncertainty = default_uncertainty(game.payoffs)
    result = benchmark(solve_cubis, game, uncertainty, num_segments=10, epsilon=0.01)
    assert np.isfinite(result.worst_case_value)


def test_f1_report(benchmark, quality_table, report):
    # Benchmark the evaluation path (worst-case scoring of one strategy).
    from repro.analysis.evaluation import evaluate_strategy

    game = random_interval_game(20, seed=1)
    uncertainty = default_uncertainty(game.payoffs)
    x = game.strategy_space.uniform()
    benchmark(evaluate_strategy, game, uncertainty, x)

    report("f1_quality", format_quality(quality_table))

    # Shape assertions: CUBIS dominates midpoint and uniform at every size.
    for size in (5, 10, 20):
        sub = quality_table.where(num_targets=size)
        mean = lambda algo: np.mean(sub.where(algorithm=algo).column("worst_case"))
        assert mean("cubis") >= mean("midpoint") - 0.05
        assert mean("cubis") >= mean("uniform") - 0.05
        assert mean("cubis") >= mean("worst_type") - 0.25
