"""Benchmark + reproduction of Experiment F3 (value of robustness vs
uncertainty level).

Regenerates the worst-case utility of CUBIS and the midpoint strategy as
the SUQR weight boxes scale from degenerate (0) to wider-than-paper (1.5),
and times a CUBIS solve at the widest setting.

Expected shape: the two coincide at scale 0 and the gap (robust minus
midpoint, always >= 0 up to tolerance) widens with the scale — the paper's
Table I contrast, swept.

Run:  pytest benchmarks/bench_intervals.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.cubis import solve_cubis
from repro.experiments.intervals import format_intervals, run_intervals
from repro.experiments.quality import default_uncertainty
from repro.game.generator import random_interval_game


@pytest.fixture(scope="module")
def intervals_table():
    return run_intervals(
        scales=(0.0, 0.25, 0.5, 1.0, 1.5),
        num_targets=10,
        num_trials=3,
        num_segments=10,
        epsilon=0.01,
        seed=2016,
    )


def test_f3_cubis_widest(benchmark):
    game = random_interval_game(10, payoff_halfwidth=0.5, seed=3)
    uncertainty = default_uncertainty(game.payoffs).with_scaled_uncertainty(1.5)
    result = benchmark(solve_cubis, game, uncertainty, num_segments=10, epsilon=0.01)
    assert np.isfinite(result.worst_case_value)


def test_f3_report(benchmark, intervals_table, report):
    game = random_interval_game(10, payoff_halfwidth=0.5, seed=3)
    uncertainty = default_uncertainty(game.payoffs).with_scaled_uncertainty(0.25)
    benchmark(solve_cubis, game, uncertainty, num_segments=10, epsilon=0.01)

    report("f3_intervals", format_intervals(intervals_table))

    scales = sorted({row["scale"] for row in intervals_table.rows})
    gaps = []
    for s in scales:
        sub = intervals_table.where(scale=s)
        c = np.mean(sub.where(algorithm="cubis").column("worst_case"))
        m = np.mean(sub.where(algorithm="midpoint").column("worst_case"))
        gaps.append(c - m)
    # Robust never loses to midpoint (up to approximation tolerance) and
    # the advantage at the widest setting clearly exceeds the narrowest.
    assert all(g >= -0.05 for g in gaps)
    assert gaps[-1] >= gaps[0] - 0.05
