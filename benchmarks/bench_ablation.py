"""Benchmark + reproduction of Experiment F4 (the O(epsilon + 1/K) bound).

Regenerates the measured-vs-certified optimality gap over the segment
count K and over the binary-search tolerance epsilon, and times CUBIS at
two K values (showing the cost of accuracy).

Expected shape: measured gap decays with K and with epsilon; the
certified bound always dominates the measured gap.

Run:  pytest benchmarks/bench_ablation.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.cubis import solve_cubis
from repro.experiments.ablation import (
    format_ablation,
    run_ablation_epsilon,
    run_ablation_k,
)
from repro.experiments.quality import default_uncertainty
from repro.game.generator import random_interval_game


def _instance():
    game = random_interval_game(5, payoff_halfwidth=0.5, seed=4)
    return game, default_uncertainty(game.payoffs)


@pytest.mark.parametrize("num_segments", [4, 32])
def test_f4_cubis_by_k(benchmark, num_segments):
    game, uncertainty = _instance()
    result = benchmark(
        solve_cubis, game, uncertainty, num_segments=num_segments, epsilon=1e-3
    )
    assert np.isfinite(result.worst_case_value)


def test_f4_report_k(benchmark, report):
    table = run_ablation_k(
        segment_counts=(2, 4, 8, 16, 32), num_targets=5, num_trials=2, seed=2016
    )
    game, uncertainty = _instance()
    benchmark(solve_cubis, game, uncertainty, num_segments=8, epsilon=1e-3)

    report("f4_ablation_k", format_ablation(table, "num_segments"))

    means = table.group_mean("num_segments", "gap")
    assert means[32] <= means[2] + 1e-6
    for row in table.rows:
        assert row["gap"] <= row["certified"] + 1e-6


def test_f4_report_epsilon(benchmark, report):
    table = run_ablation_epsilon(
        epsilons=(0.5, 0.1, 0.02, 0.004),
        num_targets=5,
        num_segments=30,
        num_trials=2,
        seed=2016,
    )
    game, uncertainty = _instance()
    benchmark(solve_cubis, game, uncertainty, num_segments=30, epsilon=0.02)

    report("f4_ablation_epsilon", format_ablation(table, "epsilon"))

    means = table.group_mean("epsilon", "gap")
    assert means[0.004] <= means[0.5] + 1e-6
