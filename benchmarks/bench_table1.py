"""Benchmark + reproduction of Experiment T1 (the paper's Table I example).

Regenerates the Section III worked example — midpoint vs robust strategy
and their worst-case utilities — and times a full CUBIS solve of the
Table I game (instance definition shared with the test suite and the
golden fixtures via ``tests/fixtures_games.py``).

Run:  pytest benchmarks/bench_table1.py --benchmark-only
"""

import pytest

from repro.core.cubis import solve_cubis
from repro.experiments.table1 import format_table1, run_table1


def test_t1_cubis_solve(benchmark, report, table1, table1_uncertainty):
    result = benchmark(
        solve_cubis, table1, table1_uncertainty, num_segments=25, epsilon=1e-4
    )
    assert result.worst_case_value == pytest.approx(-0.90, abs=0.05)

    report("t1_table1", format_table1(run_table1(num_segments=25, epsilon=1e-4)))
