"""Benchmark + reproduction of Experiment F5 (the solution-concept
landscape): all nine planners on one game class, scored from every angle.

Run:  pytest benchmarks/bench_landscape.py --benchmark-only
"""

import numpy as np
import pytest

from repro.core.cubis import solve_cubis
from repro.experiments.landscape import format_landscape, run_landscape
from repro.experiments.quality import default_uncertainty
from repro.game.generator import random_interval_game


def test_f5_report(benchmark, report):
    table = run_landscape(
        num_targets=8, num_trials=2, num_segments=10, epsilon=0.01, num_types=5,
        seed=2016,
    )
    game = random_interval_game(8, seed=2)
    benchmark(
        solve_cubis, game, default_uncertainty(game.payoffs),
        num_segments=8, epsilon=0.05,
    )

    report("f5_landscape", format_landscape(table))

    def mean_worst(name):
        return float(table.where(algorithm=name).column("worst_case").mean())

    # The paper's criterion: CUBIS tops the worst-case column (maximin may
    # tie within the approximation envelope; everything else trails).
    cubis = mean_worst("cubis")
    for name in ("midpoint", "bayesian", "sse", "match", "uniform",
                 "worst_type", "minimax_regret"):
        assert cubis >= mean_worst(name) - 0.05, name
    assert cubis >= mean_worst("maximin") - 0.15
