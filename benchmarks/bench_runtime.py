"""Benchmark + reproduction of Experiment F2 (runtime scaling).

Times CUBIS and the fmincon-style multi-start comparator across game
sizes (the parametrised benchmarks are the runtime figure itself), and
prints the measured-time + quality series.

Expected shape: CUBIS wall-clock grows mildly in T; the multi-start
comparator's quality collapses (local optima) even where its time looks
competitive at small T, and its time grows faster with T.

Run:  pytest benchmarks/bench_runtime.py --benchmark-only
"""

import pathlib

import numpy as np
import pytest

from repro.core.cubis import solve_cubis
from repro.core.exact import solve_exact
from repro.experiments.perf import (
    compare_bench,
    format_bench,
    run_bench_runtime,
    write_bench_json,
)
from repro.experiments.quality import default_uncertainty
from repro.experiments.runtime import format_runtime, run_runtime
from repro.game.generator import random_interval_game

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _instance(num_targets: int):
    game = random_interval_game(num_targets, seed=100 + num_targets)
    return game, default_uncertainty(game.payoffs)


@pytest.mark.parametrize("num_targets", [5, 10, 20, 40])
def test_f2_cubis(benchmark, num_targets):
    game, uncertainty = _instance(num_targets)
    result = benchmark(solve_cubis, game, uncertainty, num_segments=10, epsilon=0.01)
    assert np.isfinite(result.worst_case_value)


@pytest.mark.parametrize("memoise", [False, True], ids=["cold", "memoised"])
def test_f2_memoisation(benchmark, memoise):
    """Cold (rebuild + full MILP per step) vs memoised (patched skeleton +
    LP screen) on the same instance — the per-solve half of the tentpole."""
    game, uncertainty = _instance(20)
    result = benchmark(
        solve_cubis, game, uncertainty,
        num_segments=10, epsilon=0.01, memoise=memoise,
    )
    assert np.isfinite(result.worst_case_value)


def test_f2_bench_runtime_json(benchmark, report):
    """Emit BENCH_runtime.json (repo root) and assert the deterministic
    wins: fewer full MILP solves on the warm path, the incremental
    session actually patching, parallel == serial.

    The configuration matches the ``repro bench`` CLI defaults so the
    emitted file is byte-compatible with the committed reference the CI
    regression gate compares against.
    """
    payload = run_bench_runtime(
        num_targets=50, num_segments=10, epsilon=1e-2,
        num_games=6, seed=2016, workers=2, speculation=3,
    )
    write_bench_json(payload, REPO_ROOT / "BENCH_runtime.json")

    # Give the benchmark fixture something cheap but real to time.
    game, uncertainty = _instance(10)
    benchmark(solve_cubis, game, uncertainty, num_segments=5, epsilon=0.1)

    report("f2_bench_runtime", format_bench(payload))

    # Count-based assertions only — wall-clock ratios are hardware noise,
    # solver-call counts are not.
    assert payload["warm"]["milp_solves"] < payload["cold"]["milp_solves"]
    assert payload["cold"]["milp_solves"] == payload["cold"]["oracle_calls"]
    assert payload["parallel"]["identical_to_serial"]
    # Session pass: every game ran incrementally, live models were
    # patched (not rebuilt) between steps, and no full MILP solve beyond
    # the cold count was needed.
    session = payload["session"]
    assert all(g["session_mode"] == "incremental" for g in session["per_game"])
    assert all(g["session_mode"] == "fresh" for g in payload["cold"]["per_game"])
    assert all(g["backend"] == "highs" for g in session["per_game"])
    assert session["session_patches"] > 0
    assert session["speculative_probes"] > 0
    assert session["milp_solves"] <= payload["cold"]["milp_solves"]
    # A payload can never regress against itself.
    assert compare_bench(payload, payload, max_regression=1.25) == []


@pytest.mark.parametrize("num_targets", [5, 10, 20])
def test_f2_multistart(benchmark, num_targets):
    game, uncertainty = _instance(num_targets)
    result = benchmark(solve_exact, game, uncertainty, num_starts=8, seed=0)
    assert np.isfinite(result.worst_case_value)


def test_f2_report(benchmark, report):
    table = run_runtime(
        target_counts=(5, 10, 20),
        num_trials=2,
        num_segments=10,
        epsilon=0.01,
        num_starts=8,
        seed=2016,
    )
    # Give the benchmark fixture something cheap but real to time.
    game, uncertainty = _instance(10)
    benchmark(solve_cubis, game, uncertainty, num_segments=5, epsilon=0.1)

    report("f2_runtime", format_runtime(table))

    # Shape assertion: CUBIS quality never falls below multi-start by more
    # than the approximation envelope.
    for size in (5, 10, 20):
        sub = table.where(num_targets=size)
        cubis_q = np.mean(sub.where(algorithm="cubis").column("worst_case"))
        ms_q = np.mean(sub.where(algorithm="multistart").column("worst_case"))
        assert cubis_q >= ms_q - 0.1
