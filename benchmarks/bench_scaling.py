"""Ablation A4 — CUBIS at scale: target counts up to 200.

The paper argues efficiency; this bench measures how far the two oracles
carry on a laptop.  The MILP (HiGHS) path is timed up to T = 100, the
grid-DP path (which trades a finer grid for no MILP) up to T = 200;
solution quality is cross-checked where both run.

Expected shape: both scale roughly linearly in T at fixed K (the MILP has
T·(2K+1) variables; the DP costs O(T·K·RK)); the DP's constant is far
smaller.

Run:  pytest benchmarks/bench_scaling.py --benchmark-only
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.cubis import solve_cubis
from repro.experiments.quality import default_uncertainty
from repro.game.generator import random_interval_game
from repro.utils.timing import Timer


def _instance(num_targets):
    game = random_interval_game(num_targets, payoff_halfwidth=0.5, seed=1000 + num_targets)
    return game, default_uncertainty(game.payoffs)


@pytest.mark.parametrize("num_targets", [25, 50, 100])
def test_a4_milp_scaling(benchmark, num_targets):
    game, uncertainty = _instance(num_targets)
    result = benchmark.pedantic(
        solve_cubis,
        args=(game, uncertainty),
        kwargs={"num_segments": 10, "epsilon": 0.02},
        rounds=2,
        iterations=1,
    )
    assert np.isfinite(result.worst_case_value)


@pytest.mark.parametrize("num_targets", [25, 50, 100])
def test_a4_cold_scaling(benchmark, num_targets):
    """The memoise=False baseline at the same sizes — the gap between this
    and test_a4_milp_scaling is the per-solve win of the performance layer."""
    game, uncertainty = _instance(num_targets)
    result = benchmark.pedantic(
        solve_cubis,
        args=(game, uncertainty),
        kwargs={"num_segments": 10, "epsilon": 0.02, "memoise": False},
        rounds=2,
        iterations=1,
    )
    assert np.isfinite(result.worst_case_value)


@pytest.mark.parametrize("num_targets", [50, 100, 200])
def test_a4_dp_scaling(benchmark, num_targets):
    game, uncertainty = _instance(num_targets)
    result = benchmark.pedantic(
        solve_cubis,
        args=(game, uncertainty),
        kwargs={"num_segments": 40, "epsilon": 0.02, "oracle": "dp"},
        rounds=2,
        iterations=1,
    )
    assert np.isfinite(result.worst_case_value)


def test_a4_report(benchmark, report):
    game, uncertainty = _instance(25)
    benchmark(solve_cubis, game, uncertainty, num_segments=5, epsilon=0.1)

    rows = []
    for t in (25, 50, 100):
        game, uncertainty = _instance(t)
        timer_m = Timer()
        with timer_m:
            milp = solve_cubis(game, uncertainty, num_segments=10, epsilon=0.02)
        timer_d = Timer()
        with timer_d:
            dp = solve_cubis(
                game, uncertainty, num_segments=40, epsilon=0.02, oracle="dp"
            )
        rows.append(
            [t, timer_m.elapsed, milp.worst_case_value, timer_d.elapsed, dp.worst_case_value]
        )
        # Quality cross-check: the two oracles agree within the envelope.
        assert abs(milp.worst_case_value - dp.worst_case_value) < 0.25
    report(
        "a4_scaling",
        format_table(
            ["targets", "MILP s (K=10)", "MILP value", "DP s (K=40)", "DP value"],
            rows,
            title="A4: CUBIS scaling — MILP vs grid-DP oracle",
            float_format="{:.3f}",
        ),
    )
