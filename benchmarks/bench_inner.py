"""Ablation A2 — the inner worst-case solver: vertex enumeration vs the
paper's LP (6-8) vs the dual root.

The inner problem is evaluated once per strategy scored anywhere in the
harness, so its speed matters.  This bench times all three exact methods
across target counts and asserts they agree.

Expected shape: vertex enumeration (O(T log T), pure numpy) is orders of
magnitude faster than the LP and meaningfully faster than the scalar root
find; all three values coincide to 1e-6.

Run:  pytest benchmarks/bench_inner.py --benchmark-only
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.worst_case import (
    worst_case_dual_root,
    worst_case_lp,
    worst_case_response,
)
from repro.utils.timing import Timer


def _instance(num_targets, seed=0):
    rng = np.random.default_rng(seed)
    ud = rng.uniform(-8, 8, size=num_targets)
    lo = rng.uniform(0.05, 1.0, size=num_targets)
    hi = lo + rng.uniform(0.0, 3.0, size=num_targets)
    return ud, lo, hi


@pytest.mark.parametrize("num_targets", [10, 100, 1000])
def test_a2_enumeration(benchmark, num_targets):
    ud, lo, hi = _instance(num_targets)
    sol = benchmark(worst_case_response, ud, lo, hi)
    assert np.isfinite(sol.value)


@pytest.mark.parametrize("num_targets", [10, 100])
def test_a2_lp(benchmark, num_targets):
    ud, lo, hi = _instance(num_targets)
    sol = benchmark(worst_case_lp, ud, lo, hi)
    assert np.isfinite(sol.value)


@pytest.mark.parametrize("num_targets", [10, 100, 1000])
def test_a2_dual_root(benchmark, num_targets):
    ud, lo, hi = _instance(num_targets)
    value = benchmark(worst_case_dual_root, ud, lo, hi)
    assert np.isfinite(value)


def test_a2_report(benchmark, report):
    ud, lo, hi = _instance(100)
    benchmark(worst_case_response, ud, lo, hi)

    rows = []
    for t in (10, 100, 1000):
        ud, lo, hi = _instance(t)
        times = {}
        values = {}
        for name, fn in (
            ("enumeration", lambda: worst_case_response(ud, lo, hi).value),
            ("lp", lambda: worst_case_lp(ud, lo, hi).value),
            ("dual root", lambda: worst_case_dual_root(ud, lo, hi)),
        ):
            timer = Timer()
            with timer:
                for _ in range(5):
                    values[name] = fn()
            times[name] = timer.elapsed / 5
        assert values["enumeration"] == pytest.approx(values["lp"], abs=1e-6)
        assert values["enumeration"] == pytest.approx(values["dual root"], abs=1e-6)
        rows.append(
            [t, times["enumeration"] * 1e3, times["lp"] * 1e3, times["dual root"] * 1e3]
        )
    report(
        "a2_inner",
        format_table(
            ["targets", "enumeration (ms)", "LP (ms)", "dual root (ms)"],
            rows,
            title="A2: inner worst-case solver ablation (values agree to 1e-6)",
        ),
    )
