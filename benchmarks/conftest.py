"""Shared benchmark helpers: terminal reporting despite pytest capture."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def report(capsys):
    """Print an experiment table to the real terminal and persist it.

    Usage: ``report("f1_quality", text)`` — writes ``benchmarks/out/
    f1_quality.txt`` and echoes to the terminal even under capture.
    """

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report
