"""Shared benchmark helpers: terminal reporting despite pytest capture,
plus the canonical game instances (from ``tests/fixtures_games.py``, so
benchmarks and golden fixtures agree on instance definitions)."""

from __future__ import annotations

import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(ROOT) not in sys.path:  # allow `pytest benchmarks/...` from anywhere
    sys.path.insert(0, str(ROOT))

from tests import fixtures_games  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def table1():
    return fixtures_games.canonical_table1()


@pytest.fixture
def table1_uncertainty(table1):
    return fixtures_games.table1_suqr(table1)


@pytest.fixture
def report(capsys):
    """Print an experiment table to the real terminal and persist it.

    Usage: ``report("f1_quality", text)`` — writes ``benchmarks/out/
    f1_quality.txt`` and echoes to the terminal even under capture.
    """

    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _report
