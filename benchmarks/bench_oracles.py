"""Ablation A1 — CUBIS per-step oracle choice: MILP (HiGHS), MILP (own
branch-and-bound), grid DP.

DESIGN.md calls out two substitutions for the paper's CPLEX dependency
(HiGHS and a from-scratch branch and bound) and one design alternative
(the grid-restricted dynamic program).  This bench measures all three on
the same games — time *and* achieved worst-case quality — demonstrating:

* HiGHS and B&B agree exactly on value (both exact MILP solvers), B&B is
  slower (it is pure Python over LP relaxations);
* the DP at equal K is fastest but loses quality at the robust optimum's
  kink (see repro/core/dp.py), needing a ~4-8x finer grid to match.

Run:  pytest benchmarks/bench_oracles.py --benchmark-only
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.core.cubis import solve_cubis
from repro.experiments.quality import default_uncertainty
from repro.game.generator import random_interval_game
from repro.utils.timing import Timer


def _instance(num_targets=8, seed=5):
    game = random_interval_game(num_targets, payoff_halfwidth=0.5, seed=seed)
    return game, default_uncertainty(game.payoffs)


CONFIGS = [
    ("milp-highs", {"oracle": "milp", "backend": "highs", "num_segments": 10}),
    ("milp-bnb", {"oracle": "milp", "backend": "bnb", "num_segments": 5}),
    ("dp (same K)", {"oracle": "dp", "num_segments": 10}),
    ("dp (8x K)", {"oracle": "dp", "num_segments": 80}),
]


@pytest.mark.parametrize("name,config", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_a1_oracle(benchmark, name, config):
    game, uncertainty = _instance()
    if name == "milp-bnb":
        # Pure-Python B&B: keep the instance small enough to time.
        game, uncertainty = _instance(num_targets=4)
    result = benchmark(solve_cubis, game, uncertainty, epsilon=0.02, **config)
    assert np.isfinite(result.worst_case_value)


def test_a1_report(benchmark, report):
    game, uncertainty = _instance()
    benchmark(solve_cubis, game, uncertainty, num_segments=5, epsilon=0.1)

    rows = []
    reference = None
    for name, config in CONFIGS:
        g, u = (game, uncertainty)
        if name == "milp-bnb":
            continue  # timed separately on the small instance above
        timer = Timer()
        with timer:
            result = solve_cubis(g, u, epsilon=0.02, **config)
        if name == "milp-highs":
            reference = result.worst_case_value
        rows.append([name, result.worst_case_value, timer.elapsed, result.iterations])
    text = format_table(
        ["oracle", "worst-case utility", "seconds", "binary steps"],
        rows,
        title="A1: CUBIS oracle ablation (T=8, epsilon=0.02)",
    )
    report("a1_oracles", text)

    # Quality sanity: fine-grid DP must approach the MILP value.
    dp_fine = [r for r in rows if r[0] == "dp (8x K)"][0][1]
    assert dp_fine >= reference - 0.2
