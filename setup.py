"""Legacy setup shim: lets `python setup.py develop` work in offline
environments where pip's PEP-660 editable path is unavailable (no wheel)."""

from setuptools import setup

setup()
